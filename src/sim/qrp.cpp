#include "src/sim/qrp.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/sim/engine_registry.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

QrpTable::QrpTable(std::size_t bits) : bits_(bits, false) {
  if (bits == 0) throw std::invalid_argument("QrpTable: zero-size table");
}

std::size_t QrpTable::slot(TermId term) const noexcept {
  // Real QRP hashes the keyword string; hashing the interned id is
  // equivalent for collision statistics.
  return static_cast<std::size_t>(util::mix64(0x515250ULL ^ term) %
                                  bits_.size());
}

void QrpTable::add_term(TermId term) noexcept { bits_[slot(term)] = true; }

bool QrpTable::may_contain(TermId term) const noexcept {
  return bits_[slot(term)];
}

bool QrpTable::may_match(std::span<const TermId> query) const noexcept {
  for (TermId t : query) {
    if (!may_contain(t)) return false;
  }
  return true;
}

double QrpTable::fill_ratio() const noexcept {
  std::size_t set = 0;
  for (bool b : bits_) set += b;
  return static_cast<double>(set) / static_cast<double>(bits_.size());
}

QrpNetwork::QrpNetwork(const overlay::TwoTierTopology& topology,
                       const PeerStore& store, std::size_t table_bits)
    : topology_(&topology), store_(&store) {
  const std::size_t n = topology.graph.num_nodes();
  if (store.num_peers() != n) {
    throw std::invalid_argument("QrpNetwork: store/topology size mismatch");
  }
  tables_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    tables_.emplace_back(table_bits);
    if (topology.is_ultrapeer[v]) continue;  // leaves only
    for (TermId t : store.peer_terms(v)) tables_[v].add_term(t);
  }
}

QrpNetwork::SearchResult QrpNetwork::search(
    NodeId source, std::span<const TermId> query, std::uint32_t ttl,
    SearchScratch& scratch, FaultSession* faults, float min_score,
    std::vector<ScoredMatch>* ranked) const {
  SearchResult out;
  if (query.empty()) return out;
  const std::vector<bool>* online =
      faults != nullptr ? faults->plan().online_mask() : nullptr;
  if (online != nullptr && !(*online)[source]) return out;

  auto probe = [&](NodeId peer) {
    ++out.peers_probed;
    if (ranked != nullptr) {
      const auto scored = store_->match_scored(peer, query, scratch.match);
      for (const ScoredMatch& m : scored) {
        admit_ranked(m, min_score, scratch, *ranked);
      }
      return;
    }
    const auto hits = store_->match(peer, query, scratch.match);
    out.results.insert(out.results.end(), hits.begin(), hits.end());
  };
  probe(source);

  // Flood the ultrapeer tier (leaves never forward in two-tier Gnutella).
  // The BFS's raw message count is discarded: QRP charges UP-tier edges
  // and leaf deliveries explicitly below.
  std::uint64_t flood_messages = 0;
  flood_into(topology_->graph, source, ttl, &topology_->is_ultrapeer, online,
             faults, scratch, flood_messages, out.fault.dropped, nullptr);

  // Partition reached nodes: ultrapeers were reached by the UP-tier
  // flood; each reached ultrapeer then screens its leaves through QRP.
  // Leaves reached directly by the flood (the source's ultrapeers
  // forwarding blindly) are re-screened here instead: we charge UP-tier
  // messages only for UP->UP edges and account leaf deliveries via QRP.
  // A fresh scratch epoch (distinct from the BFS's) marks both the
  // reached-UP and the leaf-screened sets — a node is one or the other.
  scratch.bind(topology_->graph.num_nodes());
  const std::uint8_t mark = scratch.begin_epoch();
  std::uint8_t* const marks = scratch.visit_mark.data();
  for (NodeId v : scratch.reached) {
    if (topology_->is_ultrapeer[v]) {
      marks[v] = mark;  // reached-UP set
      probe(v);  // ultrapeers index their own shared files too
    }
  }
  // Count UP-tier transmissions: every edge out of a forwarding UP (or
  // the source) toward another UP.
  auto count_up_edges = [&](NodeId u) {
    std::uint64_t c = 0;
    for (NodeId v : topology_->graph.neighbors(u)) {
      c += topology_->is_ultrapeer[v];
    }
    return c;
  };
  out.up_messages += count_up_edges(source);
  for (NodeId v : scratch.reached) {
    if (topology_->is_ultrapeer[v]) out.up_messages += count_up_edges(v);
  }

  // QRP last hop: each reached ultrapeer delivers to matching leaves.
  auto screen_leaves = [&](NodeId up) {
    for (NodeId leaf : topology_->graph.neighbors(up)) {
      if (topology_->is_ultrapeer[leaf] || marks[leaf] == mark ||
          leaf == source) {
        continue;
      }
      marks[leaf] = mark;
      if (tables_[leaf].may_match(query)) {
        // Circuit breaker: a persistently unresponsive leaf is skipped
        // without charging a delivery.
        if (faults != nullptr && faults->tripped(leaf)) continue;
        ++out.leaf_messages;  // charged even if lost or the leaf is dead
        if (faults != nullptr && !faults->deliver(up, leaf)) {
          ++out.fault.dropped;
          continue;
        }
        const bool alive = faults != nullptr
                               ? faults->online(leaf)
                               : (online == nullptr || (*online)[leaf]);
        if (!alive) continue;
        probe(leaf);
      } else {
        ++out.leaf_suppressed;
      }
    }
  };
  if (topology_->is_ultrapeer[source]) screen_leaves(source);
  for (NodeId v = 0; v < topology_->graph.num_nodes(); ++v) {
    if (topology_->is_ultrapeer[v] && marks[v] == mark) {
      screen_leaves(v);
    }
  }

  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  return out;
}

QrpNetwork::SearchResult QrpNetwork::search(NodeId source,
                                            std::span<const TermId> query,
                                            std::uint32_t ttl) const {
  SearchScratch scratch;
  return search(source, query, ttl, scratch, nullptr);
}

double QrpNetwork::mean_fill() const {
  double sum = 0.0;
  std::size_t leaves = 0;
  for (NodeId v = 0; v < tables_.size(); ++v) {
    if (topology_->is_ultrapeer[v]) continue;
    sum += tables_[v].fill_ratio();
    ++leaves;
  }
  return leaves == 0 ? 0.0 : sum / static_cast<double>(leaves);
}

namespace {

/// Registry adapter over QrpNetwork::search. Retries reuse the default
/// expanding-ring TTL escalation; the QRP-specific traffic split
/// accumulates in QrpExtras across attempts.
class QrpEngine final : public SearchEngine {
 public:
  explicit QrpEngine(const QrpNetwork& net) noexcept : net_(&net) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "qrp";
  }

 protected:
  bool preflight(const Query& query, const FaultSession*) const override {
    if (query.terms.empty()) return false;
    return query.online == nullptr || (*query.online)[query.source];
  }

  void attempt(const Query& query, EngineContext& ctx, FaultSession* faults,
               const RecoveryPolicy*, SearchOutcome& out) const override {
    const QrpNetwork::SearchResult r = net_->search(
        query.source, query.terms, query.ttl, ctx.scratch, faults,
        query.min_score, query.ranked() ? &out.top_k : nullptr);
    out.messages += r.total_messages();
    out.peers_probed += r.peers_probed;
    out.fault.dropped += r.fault.dropped;
    out.hits.insert(out.hits.end(), r.results.begin(), r.results.end());
    auto* extras = std::get_if<QrpExtras>(&out.extras);
    if (extras == nullptr) {
      out.extras = QrpExtras{};
      extras = std::get_if<QrpExtras>(&out.extras);
    }
    extras->up_messages += r.up_messages;
    extras->leaf_messages += r.leaf_messages;
    extras->leaf_suppressed += r.leaf_suppressed;
  }

 private:
  const QrpNetwork* net_;
};

}  // namespace

namespace detail {

std::unique_ptr<SearchEngine> make_qrp_engine(const EngineWorld& world) {
  if (world.qrp == nullptr) return nullptr;
  return std::make_unique<QrpEngine>(*world.qrp);
}

}  // namespace detail

}  // namespace qcp2p::sim
