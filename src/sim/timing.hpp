// Shared link-latency model + per-search timing record for the
// time-aware engine layer.
//
// The paper's Fig 8 argument is ultimately about COST: under Zipf
// replication the unstructured first phase of hybrid search fails so
// often that its latency advantage evaporates. Measuring that needs a
// time axis every engine shares:
//   * TimingModel — deterministic per-edge link latency (the hash the
//     descriptor-level GnutellaNetwork has always used, hoisted here so
//     round-based engines and DES-backed engines price the same wire).
//   * TimingRecord — the optional timing slice of a SearchOutcome:
//     first-hit latency, simulated clock consumed, DES events executed,
//     and whether the numbers are exact (event-driven simulation) or
//     estimated (rounds x mean link latency).
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/overlay/graph.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

struct TimingParams {
  /// Per-hop link latency range (uniform), seconds. P2P links are TCP
  /// paths across the wide area: tens to low hundreds of ms.
  double min_link_latency_s = 0.02;
  double max_link_latency_s = 0.20;
  /// Keys the per-edge latency hash (independent of any trial rng).
  std::uint64_t seed = 5;
};

/// Deterministic symmetric link latencies: every (u, v) edge gets a
/// fixed latency hashed from the unordered pair, so any two engines
/// sharing a TimingModel price the same link identically — and a run is
/// byte-identical for any --threads value.
class TimingModel {
 public:
  TimingModel() = default;
  explicit TimingModel(const TimingParams& params) noexcept
      : params_(params) {}

  [[nodiscard]] const TimingParams& params() const noexcept { return params_; }

  /// Latency of the (u, v) link in seconds; symmetric, deterministic.
  [[nodiscard]] double link_latency(overlay::NodeId u,
                                    overlay::NodeId v) const noexcept {
    const std::uint64_t a = std::min(u, v);
    const std::uint64_t b = std::max(u, v);
    const std::uint64_t h = util::mix64(params_.seed ^ (a << 32) ^ b);
    const double frac =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0,1)
    return params_.min_link_latency_s +
           frac * (params_.max_link_latency_s - params_.min_link_latency_s);
  }

  /// link_latency() scaled by a receiver-side multiplier — the fault
  /// layer's straggler composition (see FaultPlan::straggler_scale):
  /// every link INTO a straggling peer is slow.
  [[nodiscard]] double link_latency(overlay::NodeId u, overlay::NodeId v,
                                    double receiver_scale) const noexcept {
    return link_latency(u, v) * receiver_scale;
  }

  /// Expected latency of one link — the per-hop price the round-based
  /// engines use for estimated timing.
  [[nodiscard]] double mean_link_s() const noexcept {
    return 0.5 * (params_.min_link_latency_s + params_.max_link_latency_s);
  }

 private:
  TimingParams params_{};
};

/// Optional timing slice of a SearchOutcome. DES-backed engines fill it
/// with exact event-driven numbers (exact = true); round-based engines
/// fill an estimate from hop counts x mean link latency (exact = false);
/// engines with no time model leave the optional empty.
struct TimingRecord {
  /// Seconds until the first result reached the querier; negative when
  /// no result ever arrived (check has_first_hit()).
  double first_hit_s = -1.0;
  /// Total simulated seconds the search consumed (all attempts, plus
  /// recovery waits under fault injection).
  double clock_s = 0.0;
  /// Discrete events executed (0 for estimated records).
  std::uint64_t events = 0;
  /// True when the numbers come from the discrete-event simulation.
  bool exact = false;

  [[nodiscard]] bool has_first_hit() const noexcept {
    return first_hit_s >= 0.0;
  }
};

}  // namespace qcp2p::sim
