// Windowed SLO accounting for the serving path: deterministic latency
// quantiles (p50/p99/p999) over the DES clock.
//
// Latencies are bucketed HDR-style — a linear region below 64 us, then
// 32 linear sub-buckets per power-of-two octave — so every percentile is
// a pure function of integer bucket counts: merging shards, merging
// windows, and re-running at a different --threads value all produce
// byte-identical quantiles (no floating-point accumulation order
// anywhere). Relative quantile error is bounded by the sub-bucket width,
// ~3%.
#pragma once

#include <cstdint>
#include <vector>

namespace qcp2p::sim {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one latency sample (seconds; negatives clamp to 0). Values
  /// are quantized to whole microseconds.
  void record(double seconds) noexcept;
  /// Integer bucket-count merge; associative and commutative, so any
  /// shard/window merge order yields the same histogram.
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  /// The q-quantile in seconds (bucket lower bound — deterministic).
  /// q outside (0, 1] clamps; an empty histogram reports 0.
  [[nodiscard]] double quantile(double q) const noexcept;
  /// Mean in seconds (integer microsecond sum / count).
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double max() const noexcept;

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t us) noexcept;
  [[nodiscard]] static std::uint64_t bucket_floor_us(std::size_t b) noexcept;

  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_us_ = 0;
  std::uint64_t max_us_ = 0;
};

/// One maintenance window of the serving timeline: query outcomes,
/// membership traffic, and the latency histogram of the queries that
/// carried a time axis. All fields are integers or DES-clock doubles, so
/// a window is byte-identical for any worker count.
struct WindowStats {
  double start_s = 0.0;
  double end_s = 0.0;

  std::uint64_t queries = 0;
  std::uint64_t successes = 0;
  std::uint64_t cache_hits = 0;
  /// Successful queries whose engine produced a TimingRecord with a
  /// first hit (these populate `latency`; cache hits count as 0 s).
  std::uint64_t timed = 0;
  std::uint64_t messages = 0;

  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;

  LatencyHistogram latency;

  void merge(const WindowStats& other) noexcept;
  [[nodiscard]] double success_rate() const noexcept {
    return queries == 0 ? 0.0
                        : static_cast<double>(successes) /
                              static_cast<double>(queries);
  }
  [[nodiscard]] double hit_rate() const noexcept {
    return queries == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(queries);
  }
};

/// The serving run's stats stream: per-window rows plus the cumulative
/// merge the SLO summary reports.
class ServingStats {
 public:
  void push(WindowStats window);

  [[nodiscard]] const std::vector<WindowStats>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] const WindowStats& total() const noexcept { return total_; }

 private:
  std::vector<WindowStats> windows_;
  WindowStats total_;
};

}  // namespace qcp2p::sim
