#include "src/sim/random_walk.hpp"

#include <algorithm>

namespace qcp2p::sim {
namespace {

/// Picks the next hop; optionally degree-biased via two-choice sampling
/// (cheap approximation of proportional-to-degree that avoids a prefix
/// sum over the adjacency list).
[[nodiscard]] NodeId next_hop(const Graph& graph, NodeId at, bool biased,
                              util::Rng& rng) {
  const auto nbrs = graph.neighbors(at);
  const NodeId a = nbrs[rng.bounded(nbrs.size())];
  if (!biased) return a;
  const NodeId b = nbrs[rng.bounded(nbrs.size())];
  return graph.degree(b) > graph.degree(a) ? b : a;
}

template <typename Probe>
RandomWalkResult walk(const Graph& graph, NodeId source,
                      const RandomWalkParams& params, util::Rng& rng,
                      Probe probe) {
  RandomWalkResult out;
  if (graph.num_nodes() == 0) return out;
  probe(source, out);
  if (params.stop_after_results != 0 &&
      out.results.size() >= params.stop_after_results) {
    out.success = true;
    return out;
  }
  for (std::uint32_t w = 0; w < params.walkers; ++w) {
    NodeId at = source;
    for (std::uint32_t step = 0; step < params.max_steps; ++step) {
      if (graph.degree(at) == 0) break;
      at = next_hop(graph, at, params.degree_biased, rng);
      ++out.messages;
      probe(at, out);
      if (params.stop_after_results != 0 &&
          out.results.size() >= params.stop_after_results) {
        out.success = true;
        return out;
      }
    }
  }
  out.success = !out.results.empty();
  return out;
}

}  // namespace

RandomWalkResult random_walk_locate(const Graph& graph, NodeId source,
                                    std::span<const NodeId> holders,
                                    const RandomWalkParams& params,
                                    util::Rng& rng) {
  auto result = walk(graph, source, params, rng,
                     [&](NodeId at, RandomWalkResult& out) {
                       ++out.peers_probed;
                       if (std::binary_search(holders.begin(), holders.end(),
                                              at)) {
                         out.results.push_back(at);
                       }
                     });
  return result;
}

RandomWalkResult random_walk_search(const Graph& graph, const PeerStore& store,
                                    NodeId source,
                                    std::span<const TermId> query,
                                    const RandomWalkParams& params,
                                    util::Rng& rng) {
  auto result = walk(graph, source, params, rng,
                     [&](NodeId at, RandomWalkResult& out) {
                       ++out.peers_probed;
                       for (std::uint64_t id : store.match(at, query)) {
                         out.results.push_back(id);
                       }
                     });
  std::sort(result.results.begin(), result.results.end());
  result.results.erase(
      std::unique(result.results.begin(), result.results.end()),
      result.results.end());
  return result;
}

}  // namespace qcp2p::sim
