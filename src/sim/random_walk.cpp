#include "src/sim/random_walk.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/sim/engine_registry.hpp"

namespace qcp2p::sim {
namespace {

/// Picks the next hop; optionally degree-biased via two-choice sampling
/// (cheap approximation of proportional-to-degree that avoids a prefix
/// sum over the adjacency list).
[[nodiscard]] NodeId next_hop(const Graph& graph, NodeId at, bool biased,
                              util::Rng& rng) {
  const auto nbrs = graph.neighbors(at);
  const NodeId a = nbrs[rng.bounded(nbrs.size())];
  if (!biased) return a;
  const NodeId b = nbrs[rng.bounded(nbrs.size())];
  return graph.degree(b) > graph.degree(a) ? b : a;
}

/// Default stop rule: end the walk at the first N collected results.
struct StopAfterResults {
  std::uint32_t stop_after = 0;
  bool operator()(const RandomWalkResult& out) const {
    return stop_after != 0 && out.results.size() >= stop_after;
  }
};

template <typename Probe, typename Stop>
RandomWalkResult walk(const Graph& graph, NodeId source,
                      const RandomWalkParams& params, util::Rng& rng,
                      FaultSession* faults, Probe probe, Stop stop) {
  RandomWalkResult out;
  if (graph.num_nodes() == 0) return out;
  if (faults != nullptr && !faults->online(source)) return out;
  probe(source, out);
  if (stop(out)) {
    out.success = true;
    return out;
  }
  for (std::uint32_t w = 0; w < params.walkers; ++w) {
    NodeId at = source;
    for (std::uint32_t step = 0; step < params.max_steps; ++step) {
      if (graph.degree(at) == 0) break;
      const NodeId nxt = next_hop(graph, at, params.degree_biased, rng);
      // Circuit breaker: don't send to a neighbor the session has seen
      // fail repeatedly — the step is burned but no message is charged.
      if (faults != nullptr && faults->tripped(nxt)) continue;
      ++out.messages;
      if (faults != nullptr) {
        if (!faults->deliver_timed(at, nxt)) {
          ++out.fault.dropped;  // lost step: budget spent, walker stays
          continue;
        }
        if (!faults->online(nxt)) continue;  // dead peer never answers
      }
      at = nxt;
      probe(at, out);
      if (stop(out)) {
        out.success = true;
        return out;
      }
    }
  }
  out.success = !out.results.empty();
  return out;
}

template <typename Probe>
RandomWalkResult walk(const Graph& graph, NodeId source,
                      const RandomWalkParams& params, util::Rng& rng,
                      FaultSession* faults, Probe probe) {
  return walk(graph, source, params, rng, faults, probe,
              StopAfterResults{params.stop_after_results});
}

struct LocateProbe {
  std::span<const NodeId> holders;
  const FaultSession* faults;  // holders must be alive to answer

  void operator()(NodeId at, RandomWalkResult& out) const {
    ++out.peers_probed;
    if (std::binary_search(holders.begin(), holders.end(), at) &&
        (faults == nullptr || faults->online_peek(at))) {
      out.results.push_back(at);
    }
  }
};

struct SearchProbe {
  const PeerStore* store;
  std::span<const TermId> query;
  PeerStore::MatchScratch* match;

  void operator()(NodeId at, RandomWalkResult& out) const {
    ++out.peers_probed;
    const auto hits = store->match(at, query, *match);
    out.results.insert(out.results.end(), hits.begin(), hits.end());
  }
};

/// Scored probe for ranked queries: admits matches through the shared
/// collector (dedup in scratch.topk_seen) and tracks the consecutive-dry
/// counter the stop rule reads. Results accumulate into `ranked`, not
/// RandomWalkResult::results.
struct RankedProbe {
  const PeerStore* store;
  std::span<const TermId> terms;
  float min_score;
  SearchScratch* scratch;
  std::vector<ScoredMatch>* ranked;
  TopKTracker* tracker;
  std::uint32_t* stall;

  void operator()(NodeId at, RandomWalkResult& out) const {
    ++out.peers_probed;
    const auto matched = store->match_scored(at, terms, scratch->match);
    const std::size_t before = ranked->size();
    for (const ScoredMatch& m : matched) {
      admit_ranked(m, min_score, *scratch, *ranked);
    }
    // Stability (DESIGN.md §11): a probe that admits nothing into the
    // current top-k extends the stall window; an improvement resets it.
    *stall = tracker->note_from(*ranked, before) ? 0 : *stall + 1;
  }
};

void dedup_results(RandomWalkResult& result) {
  std::sort(result.results.begin(), result.results.end());
  result.results.erase(
      std::unique(result.results.begin(), result.results.end()),
      result.results.end());
}

}  // namespace

RandomWalkResult random_walk_locate(const Graph& graph, NodeId source,
                                    std::span<const NodeId> holders,
                                    const RandomWalkParams& params,
                                    util::Rng& rng) {
  return walk(graph, source, params, rng, nullptr,
              LocateProbe{holders, nullptr});
}

RandomWalkResult random_walk_search(const Graph& graph, const PeerStore& store,
                                    NodeId source,
                                    std::span<const TermId> query,
                                    const RandomWalkParams& params,
                                    util::Rng& rng) {
  SearchScratch scratch;
  return random_walk_search(graph, store, source, query, params, rng, scratch);
}

RandomWalkResult random_walk_search(const Graph& graph, const PeerStore& store,
                                    NodeId source,
                                    std::span<const TermId> query,
                                    const RandomWalkParams& params,
                                    util::Rng& rng, SearchScratch& scratch) {
  auto result = walk(graph, source, params, rng, nullptr,
                     SearchProbe{&store, query, &scratch.match});
  dedup_results(result);
  return result;
}

namespace {

/// Registry adapter over the walk core. A dropped/dead step burns budget
/// and leaves the walker in place; the decorator's retry loop re-walks
/// from the source with the per-walker step budget escalated (the
/// escalate() override below scales Query::budget, not TTL).
class RandomWalkEngine final : public SearchEngine {
 public:
  RandomWalkEngine(const Graph& graph, const PeerStore* store,
                   const RandomWalkParams& params) noexcept
      : graph_(&graph), store_(store), params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "random-walk";
  }
  [[nodiscard]] bool can_locate() const noexcept override { return true; }

 protected:
  bool preflight(const Query& query, const FaultSession*) const override {
    if (graph_->num_nodes() == 0) return false;
    return query.is_locate() || store_ != nullptr;
  }

  void attempt(const Query& query, EngineContext& ctx, FaultSession* faults,
               const RecoveryPolicy*, SearchOutcome& out) const override {
    RandomWalkParams p = params_;
    if (query.budget != 0) p.max_steps = query.budget;
    if (query.ranked()) {
      std::uint32_t stall = 0;
      TopKTracker tracker(query.k);
      tracker.note_from(out.top_k, 0);  // prior attempts' candidates
      const RandomWalkResult r =
          walk(*graph_, query.source, p, *ctx.rng, faults,
               RankedProbe{store_, query.terms, query.min_score, &ctx.scratch,
                           &out.top_k, &tracker, &stall},
               [&stall, &out](const RandomWalkResult&) {
                 return stall >= kRankedStallProbes && !out.top_k.empty();
               });
      out.messages += r.messages;
      out.peers_probed += r.peers_probed;
      out.fault.dropped += r.fault.dropped;
      return;
    }
    const RandomWalkResult r =
        query.is_locate()
            ? walk(*graph_, query.source, p, *ctx.rng, faults,
                   LocateProbe{query.holders, faults})
            : walk(*graph_, query.source, p, *ctx.rng, faults,
                   SearchProbe{store_, query.terms, &ctx.scratch.match});
    out.messages += r.messages;
    out.peers_probed += r.peers_probed;
    out.fault.dropped += r.fault.dropped;
    out.hits.insert(out.hits.end(), r.results.begin(), r.results.end());
  }

  void escalate(Query& query, const RecoveryPolicy& policy) const override {
    const auto base = static_cast<double>(
        query.budget != 0 ? query.budget : params_.max_steps);
    const double scaled = std::ceil(base * policy.budget_escalation);
    query.budget =
        static_cast<std::uint32_t>(std::min(scaled, double{1u << 20}));
  }

  void finish(const Query& query, SearchOutcome& out) const override {
    if (query.ranked()) {
      finish_ranked(query, out);
      return;
    }
    // Locate hits stay in visit order; only content hits deduplicate.
    if (!query.is_locate()) sort_unique_hits(out.hits);
    out.success = !out.hits.empty();
  }

 private:
  const Graph* graph_;
  const PeerStore* store_;
  RandomWalkParams params_;
};

}  // namespace

namespace detail {

std::unique_ptr<SearchEngine> make_walk_engine(const EngineWorld& world) {
  if (world.graph == nullptr) return nullptr;
  return std::make_unique<RandomWalkEngine>(*world.graph, world.store,
                                            world.walk);
}

}  // namespace detail

}  // namespace qcp2p::sim
