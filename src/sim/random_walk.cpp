#include "src/sim/random_walk.hpp"

#include <algorithm>
#include <cmath>

namespace qcp2p::sim {
namespace {

/// Picks the next hop; optionally degree-biased via two-choice sampling
/// (cheap approximation of proportional-to-degree that avoids a prefix
/// sum over the adjacency list).
[[nodiscard]] NodeId next_hop(const Graph& graph, NodeId at, bool biased,
                              util::Rng& rng) {
  const auto nbrs = graph.neighbors(at);
  const NodeId a = nbrs[rng.bounded(nbrs.size())];
  if (!biased) return a;
  const NodeId b = nbrs[rng.bounded(nbrs.size())];
  return graph.degree(b) > graph.degree(a) ? b : a;
}

template <typename Probe>
RandomWalkResult walk(const Graph& graph, NodeId source,
                      const RandomWalkParams& params, util::Rng& rng,
                      FaultSession* faults, Probe probe) {
  RandomWalkResult out;
  if (graph.num_nodes() == 0) return out;
  if (faults != nullptr && !faults->online(source)) return out;
  probe(source, out);
  if (params.stop_after_results != 0 &&
      out.results.size() >= params.stop_after_results) {
    out.success = true;
    return out;
  }
  for (std::uint32_t w = 0; w < params.walkers; ++w) {
    NodeId at = source;
    for (std::uint32_t step = 0; step < params.max_steps; ++step) {
      if (graph.degree(at) == 0) break;
      const NodeId nxt = next_hop(graph, at, params.degree_biased, rng);
      ++out.messages;
      if (faults != nullptr) {
        if (!faults->deliver_timed()) {
          ++out.fault.dropped;  // lost step: budget spent, walker stays
          continue;
        }
        if (!faults->online(nxt)) continue;  // dead peer never answers
      }
      at = nxt;
      probe(at, out);
      if (params.stop_after_results != 0 &&
          out.results.size() >= params.stop_after_results) {
        out.success = true;
        return out;
      }
    }
  }
  out.success = !out.results.empty();
  return out;
}

/// Attempt loop shared by the fault-injected entry points: re-walk with
/// an escalated budget until something is found or retries run out.
template <typename Probe>
RandomWalkResult walk_with_recovery(const Graph& graph, NodeId source,
                                    const RandomWalkParams& params,
                                    util::Rng& rng, FaultSession& faults,
                                    const RecoveryPolicy& policy,
                                    Probe probe) {
  RandomWalkResult out;
  RandomWalkParams attempt_params = params;
  for (std::uint32_t attempt = 0;; ++attempt) {
    RandomWalkResult r = walk(graph, source, attempt_params, rng, &faults,
                              probe);
    out.messages += r.messages;
    out.peers_probed += r.peers_probed;
    out.fault.dropped += r.fault.dropped;
    out.results.insert(out.results.end(), r.results.begin(), r.results.end());
    if (!out.results.empty() || attempt >= policy.max_retries) break;
    const double wait = policy.timeout_ms + policy.backoff_after(attempt);
    faults.charge_wait(wait);
    out.fault.recovery_wait_ms += wait;
    ++out.fault.retries;
    const double scaled = std::ceil(static_cast<double>(attempt_params.max_steps) *
                                    policy.budget_escalation);
    attempt_params.max_steps = static_cast<std::uint32_t>(
        std::min(scaled, double{1u << 20}));
  }
  out.success = !out.results.empty();
  return out;
}

struct LocateProbe {
  std::span<const NodeId> holders;
  const FaultSession* faults;  // holders must be alive to answer

  void operator()(NodeId at, RandomWalkResult& out) const {
    ++out.peers_probed;
    if (std::binary_search(holders.begin(), holders.end(), at) &&
        (faults == nullptr || faults->online(at))) {
      out.results.push_back(at);
    }
  }
};

struct SearchProbe {
  const PeerStore* store;
  std::span<const TermId> query;
  PeerStore::MatchScratch* match;

  void operator()(NodeId at, RandomWalkResult& out) const {
    ++out.peers_probed;
    const auto hits = store->match(at, query, *match);
    out.results.insert(out.results.end(), hits.begin(), hits.end());
  }
};

void dedup_results(RandomWalkResult& result) {
  std::sort(result.results.begin(), result.results.end());
  result.results.erase(
      std::unique(result.results.begin(), result.results.end()),
      result.results.end());
}

}  // namespace

RandomWalkResult random_walk_locate(const Graph& graph, NodeId source,
                                    std::span<const NodeId> holders,
                                    const RandomWalkParams& params,
                                    util::Rng& rng) {
  return walk(graph, source, params, rng, nullptr,
              LocateProbe{holders, nullptr});
}

RandomWalkResult random_walk_search(const Graph& graph, const PeerStore& store,
                                    NodeId source,
                                    std::span<const TermId> query,
                                    const RandomWalkParams& params,
                                    util::Rng& rng) {
  SearchScratch scratch;
  return random_walk_search(graph, store, source, query, params, rng, scratch);
}

RandomWalkResult random_walk_search(const Graph& graph, const PeerStore& store,
                                    NodeId source,
                                    std::span<const TermId> query,
                                    const RandomWalkParams& params,
                                    util::Rng& rng, SearchScratch& scratch) {
  auto result = walk(graph, source, params, rng, nullptr,
                     SearchProbe{&store, query, &scratch.match});
  dedup_results(result);
  return result;
}

RandomWalkResult random_walk_locate(const Graph& graph, NodeId source,
                                    std::span<const NodeId> holders,
                                    const RandomWalkParams& params,
                                    util::Rng& rng, FaultSession& faults,
                                    const RecoveryPolicy& policy) {
  return walk_with_recovery(graph, source, params, rng, faults, policy,
                            LocateProbe{holders, &faults});
}

RandomWalkResult random_walk_search(const Graph& graph, const PeerStore& store,
                                    NodeId source,
                                    std::span<const TermId> query,
                                    const RandomWalkParams& params,
                                    util::Rng& rng, FaultSession& faults,
                                    const RecoveryPolicy& policy) {
  SearchScratch scratch;
  return random_walk_search(graph, store, source, query, params, rng, scratch,
                            faults, policy);
}

RandomWalkResult random_walk_search(const Graph& graph, const PeerStore& store,
                                    NodeId source,
                                    std::span<const TermId> query,
                                    const RandomWalkParams& params,
                                    util::Rng& rng, SearchScratch& scratch,
                                    FaultSession& faults,
                                    const RecoveryPolicy& policy) {
  auto result = walk_with_recovery(graph, source, params, rng, faults, policy,
                                   SearchProbe{&store, query, &scratch.match});
  dedup_results(result);
  return result;
}

}  // namespace qcp2p::sim
