#include "src/sim/gia.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/sim/engine_registry.hpp"

namespace qcp2p::sim {

GiaNetwork::GiaNetwork(overlay::GiaTopology topology, PeerStore store)
    : topology_(std::move(topology)), store_(std::move(store)) {}

std::vector<std::uint64_t> GiaNetwork::match_with_one_hop(
    NodeId peer, std::span<const TermId> query,
    const std::vector<bool>* online) const {
  SearchScratch scratch;
  std::vector<std::uint64_t> hits;
  match_with_one_hop(peer, query, online, scratch, hits);
  return hits;
}

void GiaNetwork::match_with_one_hop(NodeId peer, std::span<const TermId> query,
                                    const std::vector<bool>* online,
                                    SearchScratch& scratch,
                                    std::vector<std::uint64_t>& hits) const {
  auto& buf = scratch.hop_hits;
  buf.clear();
  {
    const auto own = store_.match(peer, query, scratch.match);
    buf.insert(buf.end(), own.begin(), own.end());
  }
  for (NodeId nbr : topology_.graph.neighbors(peer)) {
    if (online != nullptr && !(*online)[nbr]) continue;
    const auto more = store_.match(nbr, query, scratch.match);
    buf.insert(buf.end(), more.begin(), more.end());
  }
  std::sort(buf.begin(), buf.end());
  buf.erase(std::unique(buf.begin(), buf.end()), buf.end());
  hits.insert(hits.end(), buf.begin(), buf.end());
}

NodeId GiaNetwork::biased_step(NodeId at, double bias, util::Rng& rng) const {
  const auto nbrs = topology_.graph.neighbors(at);
  const NodeId uniform = nbrs[rng.bounded(nbrs.size())];
  if (!rng.chance(bias)) return uniform;
  // Pick the highest-capacity of a small sample (cheap argmax surrogate
  // over large adjacency lists).
  NodeId best = uniform;
  for (int trial = 0; trial < 3; ++trial) {
    const NodeId cand = nbrs[rng.bounded(nbrs.size())];
    if (topology_.capacity[cand] > topology_.capacity[best]) best = cand;
  }
  return best;
}

GiaSearchResult GiaNetwork::search_once(NodeId source,
                                        std::span<const TermId> query,
                                        const GiaSearchParams& params,
                                        util::Rng& rng, FaultSession* faults,
                                        SearchScratch& scratch) const {
  GiaSearchResult out;
  const std::vector<bool>* online =
      faults != nullptr ? faults->plan().online_mask() : nullptr;
  if (faults != nullptr && !faults->online_peek(source)) return out;
  auto probe = [&](NodeId at) {
    ++out.peers_probed;
    match_with_one_hop(at, query, online, scratch, out.results);
  };
  probe(source);
  NodeId at = source;
  // The walk budget counts steps, not sends: a breaker skip burns a step
  // without charging a message, so a walker boxed in by tripped
  // neighbors runs out of budget instead of spinning forever.
  std::uint32_t steps = 0;
  while (steps < params.max_steps &&
         (params.stop_after_results == 0 ||
          out.results.size() < params.stop_after_results)) {
    if (topology_.graph.degree(at) == 0) break;
    ++steps;
    const NodeId nxt = biased_step(at, params.capacity_bias, rng);
    if (faults != nullptr && faults->tripped(nxt)) continue;
    ++out.messages;
    if (faults != nullptr) {
      if (!faults->deliver_timed(at, nxt)) {
        ++out.fault.dropped;  // lost step: budget spent, walker stays
        continue;
      }
      if (!faults->online(nxt)) continue;  // dead peer never answers
    }
    at = nxt;
    probe(at);
  }
  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  out.success = out.results.size() >= std::max<std::size_t>(
                                          1, params.stop_after_results);
  return out;
}

GiaSearchResult GiaNetwork::search_ranked_once(
    NodeId source, std::span<const TermId> query, std::uint32_t k,
    float min_score, const GiaSearchParams& params, util::Rng& rng,
    FaultSession* faults, SearchScratch& scratch,
    std::vector<ScoredMatch>& ranked) const {
  GiaSearchResult out;
  const std::vector<bool>* online =
      faults != nullptr ? faults->plan().online_mask() : nullptr;
  if (faults != nullptr && !faults->online_peek(source)) return out;
  std::uint32_t stall = 0;
  TopKTracker tracker(k);
  tracker.note_from(ranked, 0);  // prior attempts' candidates
  auto probe = [&](NodeId at) {
    ++out.peers_probed;
    const std::size_t before = ranked.size();
    {
      const auto own = store_.match_scored(at, query, scratch.match);
      for (const ScoredMatch& m : own) {
        admit_ranked(m, min_score, scratch, ranked);
      }
    }
    for (NodeId nbr : topology_.graph.neighbors(at)) {
      if (online != nullptr && !(*online)[nbr]) continue;
      const auto more = store_.match_scored(nbr, query, scratch.match);
      for (const ScoredMatch& m : more) {
        admit_ranked(m, min_score, scratch, ranked);
      }
    }
    // Stability (DESIGN.md §11): probes that admit nothing into the
    // current top-k extend the stall window; improvements reset it.
    stall = tracker.note_from(ranked, before) ? 0 : stall + 1;
  };
  probe(source);
  NodeId at = source;
  std::uint32_t steps = 0;  // breaker skips burn budget; see search_once
  while (steps < params.max_steps &&
         !(stall >= kRankedStallProbes && !ranked.empty())) {
    if (topology_.graph.degree(at) == 0) break;
    ++steps;
    const NodeId nxt = biased_step(at, params.capacity_bias, rng);
    if (faults != nullptr && faults->tripped(nxt)) continue;
    ++out.messages;
    if (faults != nullptr) {
      if (!faults->deliver_timed(at, nxt)) {
        ++out.fault.dropped;  // lost step: budget spent, walker stays
        continue;
      }
      if (!faults->online(nxt)) continue;  // dead peer never answers
    }
    at = nxt;
    probe(at);
  }
  out.success = !ranked.empty();
  return out;
}

GiaSearchResult GiaNetwork::search(NodeId source,
                                   std::span<const TermId> query,
                                   const GiaSearchParams& params,
                                   util::Rng& rng) const {
  SearchScratch scratch;
  return search_once(source, query, params, rng, nullptr, scratch);
}

GiaSearchResult GiaNetwork::search(NodeId source,
                                   std::span<const TermId> query,
                                   const GiaSearchParams& params,
                                   util::Rng& rng,
                                   SearchScratch& scratch) const {
  return search_once(source, query, params, rng, nullptr, scratch);
}

GiaSearchResult GiaNetwork::locate_once(NodeId source,
                                        std::span<const NodeId> holders,
                                        const GiaSearchParams& params,
                                        util::Rng& rng,
                                        FaultSession* faults) const {
  GiaSearchResult out;
  if (faults != nullptr && !faults->online_peek(source)) return out;
  auto holder_alive = [&](NodeId v) {
    return faults == nullptr || faults->online_peek(v);
  };
  auto covered = [&](NodeId at) {
    // One-hop replication: a node also indexes its neighbors' content
    // (the neighbor must still be alive for the copy to be fetchable).
    if (std::binary_search(holders.begin(), holders.end(), at) &&
        holder_alive(at)) {
      return true;
    }
    for (NodeId nbr : topology_.graph.neighbors(at)) {
      if (std::binary_search(holders.begin(), holders.end(), nbr) &&
          holder_alive(nbr)) {
        return true;
      }
    }
    return false;
  };
  ++out.peers_probed;
  if (covered(source)) {
    out.success = true;
    return out;
  }
  NodeId at = source;
  std::uint32_t steps = 0;  // breaker skips burn budget; see search_once
  while (steps < params.max_steps) {
    if (topology_.graph.degree(at) == 0) break;
    ++steps;
    const NodeId nxt = biased_step(at, params.capacity_bias, rng);
    if (faults != nullptr && faults->tripped(nxt)) continue;
    ++out.messages;
    if (faults != nullptr) {
      if (!faults->deliver_timed(at, nxt)) {
        ++out.fault.dropped;
        continue;
      }
      if (!faults->online(nxt)) continue;
    }
    at = nxt;
    ++out.peers_probed;
    if (covered(at)) {
      out.success = true;
      return out;
    }
  }
  return out;
}

GiaSearchResult GiaNetwork::locate(NodeId source,
                                   std::span<const NodeId> holders,
                                   const GiaSearchParams& params,
                                   util::Rng& rng) const {
  return locate_once(source, holders, params, rng, nullptr);
}

namespace {

/// Registry adapter over search_once/locate_once. Gia's success is NOT
/// "found any hit": a content search succeeds only when an attempt met
/// its stop_after_results target, so satisfied()/finish() preserve the
/// per-attempt success flag instead of deriving one from the hit list.
class GiaEngine final : public SearchEngine {
 public:
  GiaEngine(const GiaNetwork& net, const GiaSearchParams& params) noexcept
      : net_(&net), params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "gia";
  }
  [[nodiscard]] bool can_locate() const noexcept override { return true; }

 protected:
  bool preflight(const Query&, const FaultSession*) const override {
    return net_->graph().num_nodes() != 0;
  }

  void attempt(const Query& query, EngineContext& ctx, FaultSession* faults,
               const RecoveryPolicy*, SearchOutcome& out) const override {
    GiaSearchParams p = params_;
    if (query.budget != 0) p.max_steps = query.budget;
    if (query.ranked()) {
      const GiaSearchResult r = net_->search_ranked_once(
          query.source, query.terms, query.k, query.min_score, p, *ctx.rng,
          faults, ctx.scratch, out.top_k);
      out.messages += r.messages;
      out.peers_probed += r.peers_probed;
      out.fault.dropped += r.fault.dropped;
      out.success = out.success || r.success;
      return;
    }
    const GiaSearchResult r =
        query.is_locate()
            ? net_->locate_once(query.source, query.holders, p, *ctx.rng,
                                faults)
            : net_->search_once(query.source, query.terms, p, *ctx.rng, faults,
                                ctx.scratch);
    out.messages += r.messages;
    out.peers_probed += r.peers_probed;
    out.fault.dropped += r.fault.dropped;
    out.hits.insert(out.hits.end(), r.results.begin(), r.results.end());
    out.success = out.success || r.success;
  }

  bool satisfied(const SearchOutcome& out) const override {
    return out.success;
  }

  void escalate(Query& query, const RecoveryPolicy& policy) const override {
    const auto base = static_cast<double>(
        query.budget != 0 ? query.budget : params_.max_steps);
    const double scaled = std::ceil(base * policy.budget_escalation);
    query.budget =
        static_cast<std::uint32_t>(std::min(scaled, double{1u << 20}));
  }

  void finish(const Query& query, SearchOutcome& out) const override {
    if (query.ranked()) {
      finish_ranked(query, out);
      return;
    }
    sort_unique_hits(out.hits);  // success stays as the attempts left it
  }

 private:
  const GiaNetwork* net_;
  GiaSearchParams params_;
};

}  // namespace

namespace detail {

std::unique_ptr<SearchEngine> make_gia_engine(const EngineWorld& world) {
  if (world.gia == nullptr) return nullptr;
  return std::make_unique<GiaEngine>(*world.gia, world.gia_search);
}

}  // namespace detail

}  // namespace qcp2p::sim
