#include "src/sim/gia.hpp"

#include <algorithm>

namespace qcp2p::sim {

GiaNetwork::GiaNetwork(overlay::GiaTopology topology, PeerStore store)
    : topology_(std::move(topology)), store_(std::move(store)) {}

std::vector<std::uint64_t> GiaNetwork::match_with_one_hop(
    NodeId peer, std::span<const TermId> query) const {
  std::vector<std::uint64_t> hits = store_.match(peer, query);
  for (NodeId nbr : topology_.graph.neighbors(peer)) {
    const auto more = store_.match(nbr, query);
    hits.insert(hits.end(), more.begin(), more.end());
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return hits;
}

NodeId GiaNetwork::biased_step(NodeId at, double bias, util::Rng& rng) const {
  const auto nbrs = topology_.graph.neighbors(at);
  const NodeId uniform = nbrs[rng.bounded(nbrs.size())];
  if (!rng.chance(bias)) return uniform;
  // Pick the highest-capacity of a small sample (cheap argmax surrogate
  // over large adjacency lists).
  NodeId best = uniform;
  for (int trial = 0; trial < 3; ++trial) {
    const NodeId cand = nbrs[rng.bounded(nbrs.size())];
    if (topology_.capacity[cand] > topology_.capacity[best]) best = cand;
  }
  return best;
}

GiaSearchResult GiaNetwork::search(NodeId source,
                                   std::span<const TermId> query,
                                   const GiaSearchParams& params,
                                   util::Rng& rng) const {
  GiaSearchResult out;
  auto probe = [&](NodeId at) {
    ++out.peers_probed;
    for (std::uint64_t id : match_with_one_hop(at, query)) {
      out.results.push_back(id);
    }
  };
  probe(source);
  NodeId at = source;
  while (out.messages < params.max_steps &&
         (params.stop_after_results == 0 ||
          out.results.size() < params.stop_after_results)) {
    if (topology_.graph.degree(at) == 0) break;
    at = biased_step(at, params.capacity_bias, rng);
    ++out.messages;
    probe(at);
  }
  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  out.success = out.results.size() >= std::max<std::size_t>(
                                          1, params.stop_after_results);
  return out;
}

GiaSearchResult GiaNetwork::locate(NodeId source,
                                   std::span<const NodeId> holders,
                                   const GiaSearchParams& params,
                                   util::Rng& rng) const {
  GiaSearchResult out;
  auto covered = [&](NodeId at) {
    // One-hop replication: a node also indexes its neighbors' content.
    if (std::binary_search(holders.begin(), holders.end(), at)) return true;
    for (NodeId nbr : topology_.graph.neighbors(at)) {
      if (std::binary_search(holders.begin(), holders.end(), nbr)) return true;
    }
    return false;
  };
  ++out.peers_probed;
  if (covered(source)) {
    out.success = true;
    return out;
  }
  NodeId at = source;
  while (out.messages < params.max_steps) {
    if (topology_.graph.degree(at) == 0) break;
    at = biased_step(at, params.capacity_bias, rng);
    ++out.messages;
    ++out.peers_probed;
    if (covered(at)) {
      out.success = true;
      return out;
    }
  }
  return out;
}

}  // namespace qcp2p::sim
