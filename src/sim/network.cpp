#include "src/sim/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace qcp2p::sim {

Placement place_uniform(std::size_t num_objects, std::size_t copies,
                        std::size_t num_nodes, util::Rng& rng) {
  if (copies > num_nodes) {
    throw std::invalid_argument("place_uniform: copies > num_nodes");
  }
  Placement p;
  p.holders.resize(num_objects);
  for (auto& holders : p.holders) {
    holders.reserve(copies);
    while (holders.size() < copies) {
      const auto peer = static_cast<NodeId>(rng.bounded(num_nodes));
      if (std::find(holders.begin(), holders.end(), peer) == holders.end()) {
        holders.push_back(peer);
      }
    }
    std::sort(holders.begin(), holders.end());
  }
  return p;
}

Placement place_by_counts(std::span<const std::uint64_t> replica_counts,
                          std::size_t num_nodes, util::Rng& rng) {
  Placement p;
  p.holders.resize(replica_counts.size());
  for (std::size_t o = 0; o < replica_counts.size(); ++o) {
    const std::size_t copies = static_cast<std::size_t>(
        std::min<std::uint64_t>(replica_counts[o], num_nodes));
    auto& holders = p.holders[o];
    holders.reserve(copies);
    while (holders.size() < copies) {
      const auto peer = static_cast<NodeId>(rng.bounded(num_nodes));
      if (std::find(holders.begin(), holders.end(), peer) == holders.end()) {
        holders.push_back(peer);
      }
    }
    std::sort(holders.begin(), holders.end());
  }
  return p;
}

std::vector<std::uint64_t> sample_replica_counts(
    std::span<const std::uint64_t> crawl_counts, std::size_t num_objects,
    util::Rng& rng) {
  if (crawl_counts.empty()) {
    throw std::invalid_argument("sample_replica_counts: empty source");
  }
  std::vector<std::uint64_t> counts(num_objects);
  for (auto& c : counts) {
    c = crawl_counts[rng.bounded(crawl_counts.size())];
  }
  return counts;
}

void PeerStore::add_object(NodeId peer, std::uint64_t id,
                           std::vector<TermId> terms) {
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  peers_.at(peer).objects.push_back(Object{id, std::move(terms)});
  ++total_;
  finalized_ = false;
}

void PeerStore::finalize() {
  for (PeerData& pd : peers_) {
    pd.terms.clear();
    for (const Object& o : pd.objects) {
      pd.terms.insert(pd.terms.end(), o.terms.begin(), o.terms.end());
    }
    std::sort(pd.terms.begin(), pd.terms.end());
    pd.terms.erase(std::unique(pd.terms.begin(), pd.terms.end()),
                   pd.terms.end());
  }
  finalized_ = true;
}

bool PeerStore::may_match(NodeId peer, std::span<const TermId> query) const {
  const std::vector<TermId>& terms = peers_.at(peer).terms;
  for (TermId t : query) {
    if (!std::binary_search(terms.begin(), terms.end(), t)) return false;
  }
  return true;
}

std::vector<std::uint64_t> PeerStore::match(NodeId peer,
                                            std::span<const TermId> query) const {
  std::vector<std::uint64_t> hits;
  if (query.empty()) return hits;
  if (finalized_ && !may_match(peer, query)) return hits;
  for (const Object& o : peers_.at(peer).objects) {
    bool all = true;
    for (TermId t : query) {
      if (!std::binary_search(o.terms.begin(), o.terms.end(), t)) {
        all = false;
        break;
      }
    }
    if (all) hits.push_back(o.id);
  }
  return hits;
}

PeerStore peer_store_from_crawl(const trace::CrawlSnapshot& snapshot,
                                std::size_t num_nodes) {
  PeerStore store(num_nodes);
  for (std::size_t p = 0; p < snapshot.num_peers(); ++p) {
    const auto node = static_cast<NodeId>(p % num_nodes);
    for (trace::ObjectKey key : snapshot.peer_objects(p)) {
      store.add_object(node, key.bits, snapshot.object_terms(key));
    }
  }
  store.finalize();
  return store;
}

}  // namespace qcp2p::sim
