#include "src/sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/util/thread_pool.hpp"

namespace qcp2p::sim {

Placement place_uniform(std::size_t num_objects, std::size_t copies,
                        std::size_t num_nodes, util::Rng& rng) {
  if (copies > num_nodes) {
    throw std::invalid_argument("place_uniform: copies > num_nodes");
  }
  Placement p;
  p.holders.resize(num_objects);
  for (auto& holders : p.holders) {
    holders.reserve(copies);
    while (holders.size() < copies) {
      const auto peer = static_cast<NodeId>(rng.bounded(num_nodes));
      if (std::find(holders.begin(), holders.end(), peer) == holders.end()) {
        holders.push_back(peer);
      }
    }
    std::sort(holders.begin(), holders.end());
  }
  return p;
}

Placement place_by_counts(std::span<const std::uint64_t> replica_counts,
                          std::size_t num_nodes, util::Rng& rng) {
  Placement p;
  p.holders.resize(replica_counts.size());
  for (std::size_t o = 0; o < replica_counts.size(); ++o) {
    const std::size_t copies = static_cast<std::size_t>(
        std::min<std::uint64_t>(replica_counts[o], num_nodes));
    auto& holders = p.holders[o];
    holders.reserve(copies);
    while (holders.size() < copies) {
      const auto peer = static_cast<NodeId>(rng.bounded(num_nodes));
      if (std::find(holders.begin(), holders.end(), peer) == holders.end()) {
        holders.push_back(peer);
      }
    }
    std::sort(holders.begin(), holders.end());
  }
  return p;
}

std::vector<std::uint64_t> sample_replica_counts(
    std::span<const std::uint64_t> crawl_counts, std::size_t num_objects,
    util::Rng& rng) {
  if (crawl_counts.empty()) {
    throw std::invalid_argument("sample_replica_counts: empty source");
  }
  std::vector<std::uint64_t> counts(num_objects);
  for (auto& c : counts) {
    c = crawl_counts[rng.bounded(crawl_counts.size())];
  }
  return counts;
}

PeerStore::PeerStore(const PeerStore& other)
    : num_peers_(other.num_peers_),
      peers_(other.peers_),
      total_(other.total_),
      finalized_(other.finalized_),
      has_build_data_(other.has_build_data_),
      definalize_policy_(other.definalize_policy_),
      dead_(other.dead_),
      dead_postings_(other.dead_postings_),
      delta_(other.delta_),
      delta_objects_(other.delta_objects_),
      delta_postings_(other.delta_postings_) {
  if (finalized_) {
    // Copy through the spans so owned stores and mapped views copy the
    // same way; the copy always owns its arrays.
    const FlatLayout& f = other.flat_;
    peer_term_offsets_.assign(f.peer_term_offsets.begin(),
                              f.peer_term_offsets.end());
    peer_terms_flat_.assign(f.peer_terms_flat.begin(), f.peer_terms_flat.end());
    obj_offsets_.assign(f.obj_offsets.begin(), f.obj_offsets.end());
    obj_ids_.assign(f.obj_ids.begin(), f.obj_ids.end());
    obj_term_offsets_.assign(f.obj_term_offsets.begin(),
                             f.obj_term_offsets.end());
    obj_terms_flat_.assign(f.obj_terms_flat.begin(), f.obj_terms_flat.end());
    index_terms_.assign(f.index_terms.begin(), f.index_terms.end());
    index_offsets_.assign(f.index_offsets.begin(), f.index_offsets.end());
    postings_.assign(f.postings.begin(), f.postings.end());
    obj_scores_.assign(f.obj_scores.begin(), f.obj_scores.end());
    repoint_flat();
  }
}

PeerStore& PeerStore::operator=(const PeerStore& other) {
  if (this != &other) {
    PeerStore copy(other);
    *this = std::move(copy);
  }
  return *this;
}

PeerStore PeerStore::flat_view(const FlatLayout& layout) {
  const std::size_t n = layout.num_peers;
  const auto bad = [](const char* what) {
    throw std::invalid_argument(std::string("PeerStore::flat_view: ") + what);
  };
  if (layout.peer_term_offsets.size() != n + 1 ||
      layout.obj_offsets.size() != n + 1) {
    bad("peer offsets size mismatch");
  }
  if (layout.obj_term_offsets.size() != layout.obj_ids.size() + 1 ||
      layout.index_offsets.size() != layout.index_terms.size() + 1) {
    bad("object/index offsets size mismatch");
  }
  if (layout.obj_scores.size() != layout.obj_ids.size()) {
    bad("obj_scores size mismatch");
  }
  if (layout.peer_term_offsets.front() != 0 ||
      layout.peer_term_offsets.back() != layout.peer_terms_flat.size() ||
      layout.obj_offsets.front() != 0 ||
      layout.obj_offsets.back() != layout.obj_ids.size() ||
      layout.obj_term_offsets.front() != 0 ||
      layout.obj_term_offsets.back() != layout.obj_terms_flat.size() ||
      layout.index_offsets.front() != 0 ||
      layout.index_offsets.back() != layout.postings.size()) {
    bad("offset bounds mismatch");
  }
  PeerStore store(0);
  store.num_peers_ = n;
  store.peers_.clear();
  store.total_ = layout.obj_ids.size();
  store.finalized_ = true;
  store.borrowed_ = true;
  store.has_build_data_ = false;
  store.flat_ = layout;
  return store;
}

PeerStore::FlatLayout PeerStore::flat_layout() const {
  if (!finalized_) {
    throw std::logic_error("PeerStore::flat_layout: store not finalized");
  }
  if (!delta_.empty()) {
    // A snapshot taken now would silently drop the delta objects.
    throw std::logic_error(
        "PeerStore::flat_layout: delta layer pending; compact() first");
  }
  return flat_;
}

void PeerStore::repoint_flat() {
  flat_.num_peers = num_peers_;
  flat_.peer_term_offsets = peer_term_offsets_;
  flat_.peer_terms_flat = peer_terms_flat_;
  flat_.obj_offsets = obj_offsets_;
  flat_.obj_ids = obj_ids_;
  flat_.obj_term_offsets = obj_term_offsets_;
  flat_.obj_terms_flat = obj_terms_flat_;
  flat_.index_terms = index_terms_;
  flat_.index_offsets = index_offsets_;
  flat_.postings = postings_;
  flat_.obj_scores = obj_scores_;
}

void PeerStore::add_object(NodeId peer, std::uint64_t id,
                           std::vector<TermId> terms) {
  if (!has_build_data_) {
    throw std::logic_error("PeerStore::add_object: store has no build data");
  }
  if (finalized_ && definalize_policy_ == DefinalizePolicy::kForbid) {
    throw std::logic_error(
        "PeerStore::add_object: store is finalized and the de-finalize "
        "policy forbids dropping the flat layout; use add_object_delta()");
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  peers_.at(peer).objects.push_back(Object{id, std::move(terms)});
  ++total_;
  finalized_ = false;
}

const std::vector<PeerStore::Object>& PeerStore::objects(NodeId peer) const {
  if (!has_build_data_) {
    throw std::logic_error("PeerStore::objects: store has no build data");
  }
  return peers_.at(peer).objects;
}

void PeerStore::release_build_data() {
  if (!finalized_) {
    throw std::logic_error(
        "PeerStore::release_build_data: finalize() the store first");
  }
  peers_.clear();
  peers_.shrink_to_fit();
  has_build_data_ = false;
}

std::size_t PeerStore::object_count(NodeId peer) const {
  if (finalized_) {
    if (peer >= num_peers_) {
      throw std::out_of_range("PeerStore::object_count: bad peer");
    }
    return flat_.obj_offsets[peer + 1] - flat_.obj_offsets[peer];
  }
  return peers_.at(peer).objects.size();
}

std::uint64_t PeerStore::object_id(NodeId peer, std::size_t i) const {
  if (finalized_) {
    if (i >= object_count(peer)) {
      throw std::out_of_range("PeerStore::object_id: bad index");
    }
    return flat_.obj_ids[flat_.obj_offsets[peer] + i];
  }
  return peers_.at(peer).objects.at(i).id;
}

std::span<const TermId> PeerStore::object_terms(NodeId peer,
                                                std::size_t i) const {
  if (finalized_) {
    if (i >= object_count(peer)) {
      throw std::out_of_range("PeerStore::object_terms: bad index");
    }
    const std::uint32_t ord =
        flat_.obj_offsets[peer] + static_cast<std::uint32_t>(i);
    return flat_.obj_terms_flat.subspan(
        flat_.obj_term_offsets[ord],
        flat_.obj_term_offsets[ord + 1] - flat_.obj_term_offsets[ord]);
  }
  return peers_.at(peer).objects.at(i).terms;
}

void PeerStore::finalize(std::size_t threads) {
  if (!has_build_data_) {
    if (finalized_) return;  // views arrive finalized; nothing to rebuild
    throw std::logic_error("PeerStore::finalize: store has no build data");
  }
  if (total_ > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("PeerStore::finalize: too many objects for CSR");
  }
  const std::size_t n_threads =
      threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                   : threads;
  if (n_threads <= 1 || num_peers_ < 2) {
    finalize_sequential();
  } else {
    finalize_parallel(n_threads);
  }
  compute_scores(n_threads);
  repoint_flat();
  finalized_ = true;
}

void PeerStore::compute_scores(std::size_t threads) {
  // score(ord) = (sum of idf over the object's terms) / replica(obj id),
  // idf(t) = log2(1 + N / df(t)) with N the total object count and df(t)
  // the term's posting-row length. Rare terms dominate; heavily
  // replicated objects are demoted — the query-centric ranking signal
  // (a rare match is worth walking for, a popular one is everywhere).
  const std::size_t total = obj_ids_.size();
  obj_scores_.assign(total, 0.0f);
  if (total == 0) return;
  // Replica counts: commutative tally, so the map's iteration order
  // never matters and the pass can stay a simple sequential O(N) loop.
  std::unordered_map<std::uint64_t, std::uint32_t> replicas;
  replicas.reserve(total);
  for (const std::uint64_t id : obj_ids_) ++replicas[id];
  const double n_objects = static_cast<double>(total);
  const std::size_t blocks =
      std::max<std::size_t>(1, std::min(threads, total));
  std::vector<std::size_t> bounds(blocks + 1);
  for (std::size_t b = 0; b <= blocks; ++b) bounds[b] = total * b / blocks;
  // Each ordinal's score depends only on read-shared arrays and its own
  // term list, summed in term order: shards write disjoint ranges with
  // thread-independent values, so the array is byte-identical at any
  // thread count.
  util::parallel_for_blocks(
      blocks, blocks, [&](std::size_t b_begin, std::size_t b_end) {
        for (std::size_t b = b_begin; b < b_end; ++b) {
          for (std::size_t ord = bounds[b]; ord < bounds[b + 1]; ++ord) {
            double sum = 0.0;
            for (std::uint32_t k = obj_term_offsets_[ord];
                 k < obj_term_offsets_[ord + 1]; ++k) {
              const TermId t = obj_terms_flat_[k];
              const auto it = std::lower_bound(index_terms_.begin(),
                                               index_terms_.end(), t);
              const auto ti =
                  static_cast<std::size_t>(it - index_terms_.begin());
              const double df = static_cast<double>(index_offsets_[ti + 1] -
                                                    index_offsets_[ti]);
              sum += std::log2(1.0 + n_objects / df);
            }
            obj_scores_[ord] = static_cast<float>(
                sum / static_cast<double>(replicas.find(obj_ids_[ord])->second));
          }
        }
      });
}

void PeerStore::finalize_sequential() {
  const std::size_t n = num_peers_;

  // Object ordinal space + CSR-packed per-object term lists.
  obj_offsets_.assign(n + 1, 0);
  obj_ids_.clear();
  obj_ids_.reserve(static_cast<std::size_t>(total_));
  obj_term_offsets_.assign(1, 0);
  obj_term_offsets_.reserve(static_cast<std::size_t>(total_) + 1);
  obj_terms_flat_.clear();
  for (std::size_t p = 0; p < n; ++p) {
    obj_offsets_[p] = static_cast<std::uint32_t>(obj_ids_.size());
    for (const Object& o : peers_[p].objects) {
      obj_ids_.push_back(o.id);
      obj_terms_flat_.insert(obj_terms_flat_.end(), o.terms.begin(),
                             o.terms.end());
      obj_term_offsets_.push_back(
          static_cast<std::uint32_t>(obj_terms_flat_.size()));
    }
  }
  obj_offsets_[n] = static_cast<std::uint32_t>(obj_ids_.size());

  // Per-peer sorted unique term rows (the may_match prefilter).
  peer_term_offsets_.assign(1, 0);
  peer_term_offsets_.reserve(n + 1);
  peer_terms_flat_.clear();
  std::vector<TermId> row;
  for (std::size_t p = 0; p < n; ++p) {
    row.clear();
    for (const Object& o : peers_[p].objects) {
      row.insert(row.end(), o.terms.begin(), o.terms.end());
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    peer_terms_flat_.insert(peer_terms_flat_.end(), row.begin(), row.end());
    peer_term_offsets_.push_back(
        static_cast<std::uint32_t>(peer_terms_flat_.size()));
  }

  // Inverted index: (term, ordinal) pairs sorted by term then ordinal.
  // Ordinals ascend with peer id, so each term's posting row is peer-
  // grouped and a peer's slice is one binary search away.
  std::vector<std::pair<TermId, std::uint32_t>> entries;
  entries.reserve(obj_terms_flat_.size());
  for (std::uint32_t ord = 0;
       ord < static_cast<std::uint32_t>(obj_ids_.size()); ++ord) {
    for (std::uint32_t k = obj_term_offsets_[ord];
         k < obj_term_offsets_[ord + 1]; ++k) {
      entries.emplace_back(obj_terms_flat_[k], ord);
    }
  }
  std::sort(entries.begin(), entries.end());
  index_terms_.clear();
  index_offsets_.assign(1, 0);
  postings_.clear();
  postings_.reserve(entries.size());
  for (const auto& [term, ord] : entries) {
    if (index_terms_.empty() || index_terms_.back() != term) {
      index_terms_.push_back(term);
      index_offsets_.push_back(static_cast<std::uint32_t>(postings_.size()));
    }
    postings_.push_back(ord);
    index_offsets_.back() = static_cast<std::uint32_t>(postings_.size());
  }
}

void PeerStore::finalize_parallel(std::size_t threads) {
  // Byte-identical to finalize_sequential() at any shard count
  // (tests/sim_world_snapshot_test pins finalize(1) == finalize(8)):
  // every array is produced by count -> prefix-sum -> scatter passes
  // whose shards write disjoint ranges with thread-independent values.
  const std::size_t n = num_peers_;
  const std::size_t n_blocks = std::min(threads, n);
  std::vector<std::size_t> peer_bounds(n_blocks + 1);
  for (std::size_t b = 0; b <= n_blocks; ++b) {
    peer_bounds[b] = n * b / n_blocks;
  }
  const auto for_blocks = [&](auto&& fn) {
    util::parallel_for_blocks(n_blocks, n_blocks,
                              [&](std::size_t b_begin, std::size_t b_end) {
                                for (std::size_t b = b_begin; b < b_end; ++b) {
                                  fn(b, peer_bounds[b], peer_bounds[b + 1]);
                                }
                              });
  };

  // Pass 1 (parallel): per-peer object/term counts + sorted-unique term
  // rows (kept so the scatter pass does not sort twice).
  std::vector<std::uint32_t> obj_count(n), term_count(n);
  std::vector<std::vector<TermId>> rows(n);
  for_blocks([&](std::size_t, std::size_t lo, std::size_t hi) {
    std::vector<TermId> row;
    for (std::size_t p = lo; p < hi; ++p) {
      std::uint32_t terms = 0;
      row.clear();
      for (const Object& o : peers_[p].objects) {
        terms += static_cast<std::uint32_t>(o.terms.size());
        row.insert(row.end(), o.terms.begin(), o.terms.end());
      }
      obj_count[p] = static_cast<std::uint32_t>(peers_[p].objects.size());
      term_count[p] = terms;
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
      rows[p] = row;
    }
  });

  // Prefix sums (sequential, O(n)).
  obj_offsets_.assign(n + 1, 0);
  peer_term_offsets_.assign(n + 1, 0);
  std::vector<std::uint32_t> term_base(n + 1, 0);
  for (std::size_t p = 0; p < n; ++p) {
    obj_offsets_[p + 1] = obj_offsets_[p] + obj_count[p];
    term_base[p + 1] = term_base[p] + term_count[p];
    peer_term_offsets_[p + 1] =
        peer_term_offsets_[p] + static_cast<std::uint32_t>(rows[p].size());
  }

  // Pass 2 (parallel): scatter each peer's slice of every flat array.
  obj_ids_.resize(obj_offsets_[n]);
  obj_term_offsets_.resize(static_cast<std::size_t>(obj_offsets_[n]) + 1);
  obj_term_offsets_[0] = 0;
  obj_terms_flat_.resize(term_base[n]);
  peer_terms_flat_.resize(peer_term_offsets_[n]);
  for_blocks([&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      std::uint32_t ord = obj_offsets_[p];
      std::uint32_t term_cursor = term_base[p];
      for (const Object& o : peers_[p].objects) {
        obj_ids_[ord] = o.id;
        std::copy(o.terms.begin(), o.terms.end(),
                  obj_terms_flat_.begin() + term_cursor);
        term_cursor += static_cast<std::uint32_t>(o.terms.size());
        obj_term_offsets_[ord + 1] = term_cursor;
        ++ord;
      }
      std::copy(rows[p].begin(), rows[p].end(),
                peer_terms_flat_.begin() + peer_term_offsets_[p]);
    }
  });
  rows.clear();
  rows.shrink_to_fit();

  rebuild_index(threads);
}

void PeerStore::rebuild_index(std::size_t threads) {
  // Inverted index. Distinct terms are the sorted-unique union of the
  // peer term rows (identical to the term set the sequential sort
  // produces). Reads only the flat object/term arrays, so compact()
  // reuses it after folding the delta layer in.
  index_terms_.assign(peer_terms_flat_.begin(), peer_terms_flat_.end());
  std::sort(index_terms_.begin(), index_terms_.end());
  index_terms_.erase(std::unique(index_terms_.begin(), index_terms_.end()),
                     index_terms_.end());
  const std::size_t k = index_terms_.size();

  // Counting-sort parallelization over ordinal blocks: per-block term
  // counts, then per-(block, term) start cursors so block b's postings
  // for a term land exactly after block b-1's. Ordinals ascend within
  // and across blocks, so every posting row comes out ascending — the
  // order the sequential (term, ordinal) sort produces.
  const std::size_t total_ords = obj_ids_.size();
  const std::size_t ord_blocks = std::min(threads, std::max<std::size_t>(
                                                       1, total_ords));
  std::vector<std::size_t> ord_bounds(ord_blocks + 1);
  for (std::size_t b = 0; b <= ord_blocks; ++b) {
    ord_bounds[b] = total_ords * b / ord_blocks;
  }
  std::vector<std::vector<std::uint32_t>> block_counts(
      ord_blocks, std::vector<std::uint32_t>(k, 0));
  util::parallel_for_blocks(
      ord_blocks, ord_blocks, [&](std::size_t b_begin, std::size_t b_end) {
        for (std::size_t b = b_begin; b < b_end; ++b) {
          auto& counts = block_counts[b];
          for (std::size_t ord = ord_bounds[b]; ord < ord_bounds[b + 1];
               ++ord) {
            for (std::uint32_t t = obj_term_offsets_[ord];
                 t < obj_term_offsets_[ord + 1]; ++t) {
              const auto it =
                  std::lower_bound(index_terms_.begin(), index_terms_.end(),
                                   obj_terms_flat_[t]);
              ++counts[static_cast<std::size_t>(it - index_terms_.begin())];
            }
          }
        }
      });

  index_offsets_.assign(k + 1, 0);
  for (std::size_t t = 0; t < k; ++t) {
    std::uint32_t sum = 0;
    for (std::size_t b = 0; b < ord_blocks; ++b) sum += block_counts[b][t];
    index_offsets_[t + 1] = index_offsets_[t] + sum;
  }
  // block_counts[b][t] becomes block b's write cursor for term t.
  for (std::size_t t = 0; t < k; ++t) {
    std::uint32_t cursor = index_offsets_[t];
    for (std::size_t b = 0; b < ord_blocks; ++b) {
      const std::uint32_t c = block_counts[b][t];
      block_counts[b][t] = cursor;
      cursor += c;
    }
  }
  postings_.resize(index_offsets_[k]);
  util::parallel_for_blocks(
      ord_blocks, ord_blocks, [&](std::size_t b_begin, std::size_t b_end) {
        for (std::size_t b = b_begin; b < b_end; ++b) {
          auto& cursors = block_counts[b];
          for (std::size_t ord = ord_bounds[b]; ord < ord_bounds[b + 1];
               ++ord) {
            for (std::uint32_t t = obj_term_offsets_[ord];
                 t < obj_term_offsets_[ord + 1]; ++t) {
              const auto it =
                  std::lower_bound(index_terms_.begin(), index_terms_.end(),
                                   obj_terms_flat_[t]);
              postings_[cursors[static_cast<std::size_t>(
                  it - index_terms_.begin())]++] =
                  static_cast<std::uint32_t>(ord);
            }
          }
        }
      });
}

std::span<const TermId> PeerStore::peer_terms(NodeId peer) const {
  if (peer >= num_peers_) {
    throw std::out_of_range("PeerStore::peer_terms: bad peer");
  }
  if (!finalized_) return {};
  return flat_.peer_terms_flat.subspan(
      flat_.peer_term_offsets[peer],
      flat_.peer_term_offsets[peer + 1] - flat_.peer_term_offsets[peer]);
}

bool PeerStore::may_match(NodeId peer, std::span<const TermId> query) const {
  const std::span<const TermId> terms = peer_terms(peer);
  if (!live_unchecked(peer)) return false;
  if (delta_.empty()) {
    for (TermId t : query) {
      if (!std::binary_search(terms.begin(), terms.end(), t)) return false;
    }
    return true;
  }
  // Serving: the library is the union of the base row and the peer's
  // delta term row.
  const auto it = delta_.find(peer);
  const std::vector<TermId>* extra = it != delta_.end() ? &it->second.terms
                                                        : nullptr;
  for (TermId t : query) {
    if (std::binary_search(terms.begin(), terms.end(), t)) continue;
    if (extra != nullptr &&
        std::binary_search(extra->begin(), extra->end(), t)) {
      continue;
    }
    return false;
  }
  return true;
}

std::vector<std::uint64_t> PeerStore::match_reference(
    NodeId peer, std::span<const TermId> query) const {
  std::vector<std::uint64_t> hits;
  if (query.empty()) return hits;
  const auto matches = [&](std::span<const TermId> terms) {
    for (TermId t : query) {
      if (!std::binary_search(terms.begin(), terms.end(), t)) return false;
    }
    return true;
  };
  if (!has_build_data_) {
    // Views: the same linear scan over the flat per-object term rows.
    if (peer >= num_peers_) {
      throw std::out_of_range("PeerStore::match_reference: bad peer");
    }
    if (!live_unchecked(peer)) return hits;
    const std::size_t count = object_count(peer);
    for (std::size_t i = 0; i < count; ++i) {
      if (matches(object_terms(peer, i))) hits.push_back(object_id(peer, i));
    }
  } else {
    const auto& objects = peers_.at(peer).objects;
    if (!live_unchecked(peer)) return hits;
    for (const Object& o : objects) {
      if (matches(o.terms)) hits.push_back(o.id);
    }
  }
  // Delta tail (finalized serving stores only; the build-phase store
  // never carries a delta layer).
  if (!delta_.empty()) {
    if (const auto it = delta_.find(peer); it != delta_.end()) {
      for (const Object& o : it->second.objects) {
        if (matches(o.terms)) hits.push_back(o.id);
      }
    }
  }
  return hits;
}

void PeerStore::match_base(NodeId peer, std::span<const TermId> query,
                           std::vector<std::uint64_t>& hits,
                           std::vector<ScoredMatch>* scored) const {
  // Flat prefilter over the BASE term row first: most flood probes miss
  // at least one term. (Delta-only terms are the delta tail's business.)
  const std::span<const TermId> row_terms = peer_terms(peer);
  for (TermId t : query) {
    if (!std::binary_search(row_terms.begin(), row_terms.end(), t)) return;
  }

  // Every query term is somewhere in the peer's base library. Intersect
  // the rarest term's posting subrange for this peer against the other
  // terms' CSR-packed object term lists.
  const std::uint32_t lo = flat_.obj_offsets[peer];
  const std::uint32_t hi = flat_.obj_offsets[peer + 1];
  const std::uint32_t* seed_begin = nullptr;
  const std::uint32_t* seed_end = nullptr;
  for (TermId t : query) {
    const auto it = std::lower_bound(flat_.index_terms.begin(),
                                     flat_.index_terms.end(), t);
    if (it == flat_.index_terms.end() || *it != t) {
      return;  // unreachable after the prefilter, kept for safety
    }
    const auto ti = static_cast<std::size_t>(it - flat_.index_terms.begin());
    const std::uint32_t* row = flat_.postings.data();
    const std::uint32_t* begin = std::lower_bound(
        row + flat_.index_offsets[ti], row + flat_.index_offsets[ti + 1], lo);
    const std::uint32_t* end =
        std::lower_bound(begin, row + flat_.index_offsets[ti + 1], hi);
    if (begin == end) return;
    if (seed_begin == nullptr || end - begin < seed_end - seed_begin) {
      seed_begin = begin;
      seed_end = end;
    }
  }
  for (const std::uint32_t* it = seed_begin; it != seed_end; ++it) {
    const std::uint32_t ord = *it;
    const TermId* terms = flat_.obj_terms_flat.data();
    const TermId* tb = terms + flat_.obj_term_offsets[ord];
    const TermId* te = terms + flat_.obj_term_offsets[ord + 1];
    bool all = true;
    for (TermId t : query) {
      if (!std::binary_search(tb, te, t)) {
        all = false;
        break;
      }
    }
    if (all) {
      hits.push_back(flat_.obj_ids[ord]);
      if (scored != nullptr) {
        scored->push_back({flat_.obj_ids[ord], flat_.obj_scores[ord]});
      }
    }
  }
}

std::span<const ScoredMatch> PeerStore::match_scored(
    NodeId peer, std::span<const TermId> query, MatchScratch& scratch) const {
  scratch.hits.clear();
  scratch.scored.clear();
  if (query.empty()) return {};
  if (!finalized_) {
    // Build phase: no flat arrays, so no score statistics either — the
    // reference scan reports every match at score 0.
    for (const std::uint64_t id : match_reference(peer, query)) {
      scratch.scored.push_back({id, 0.0f});
    }
    return scratch.scored;
  }
  if (peer >= num_peers_) {
    throw std::out_of_range("PeerStore::match_scored: bad peer");
  }
  if (!live_unchecked(peer)) return {};
  match_base(peer, query, scratch.hits, &scratch.scored);
  if (!delta_.empty()) {
    if (const auto it = delta_.find(peer); it != delta_.end()) {
      const DeltaPeer& d = it->second;
      for (std::size_t i = 0; i < d.objects.size(); ++i) {
        const Object& o = d.objects[i];
        bool all = true;
        for (TermId t : query) {
          if (!std::binary_search(o.terms.begin(), o.terms.end(), t)) {
            all = false;
            break;
          }
        }
        if (all) scratch.scored.push_back({o.id, d.scores[i]});
      }
    }
  }
  return scratch.scored;
}

float PeerStore::object_score(NodeId peer, std::size_t i) const {
  if (!finalized_) return 0.0f;
  if (i >= object_count(peer)) {
    throw std::out_of_range("PeerStore::object_score: bad index");
  }
  return flat_.obj_scores[flat_.obj_offsets[peer] + i];
}

float PeerStore::object_score_at(NodeId peer, std::uint64_t id) const {
  if (!finalized_) return 0.0f;
  if (peer >= num_peers_) {
    throw std::out_of_range("PeerStore::object_score_at: bad peer");
  }
  for (std::uint32_t ord = flat_.obj_offsets[peer];
       ord < flat_.obj_offsets[peer + 1]; ++ord) {
    if (flat_.obj_ids[ord] == id) return flat_.obj_scores[ord];
  }
  if (!delta_.empty()) {
    if (const auto it = delta_.find(peer); it != delta_.end()) {
      const DeltaPeer& d = it->second;
      for (std::size_t i = 0; i < d.objects.size(); ++i) {
        if (d.objects[i].id == id) return d.scores[i];
      }
    }
  }
  return 0.0f;
}

std::span<const std::uint64_t> PeerStore::match(NodeId peer,
                                                std::span<const TermId> query,
                                                MatchScratch& scratch) const {
  scratch.hits.clear();
  if (query.empty()) return {};
  if (!finalized_) {
    // Build phase: fall back to the reference scan (tests and ad-hoc
    // stores); identical result set, no flat layout required.
    scratch.hits = match_reference(peer, query);
    return scratch.hits;
  }
  if (peer >= num_peers_) {
    throw std::out_of_range("PeerStore::match: bad peer");
  }
  if (!live_unchecked(peer)) return {};
  match_base(peer, query, scratch.hits);
  // Delta tail: post-finalize objects, in insertion order after the
  // base hits — the order compact()-then-match would produce.
  if (!delta_.empty()) {
    if (const auto it = delta_.find(peer); it != delta_.end()) {
      for (const Object& o : it->second.objects) {
        bool all = true;
        for (TermId t : query) {
          if (!std::binary_search(o.terms.begin(), o.terms.end(), t)) {
            all = false;
            break;
          }
        }
        if (all) scratch.hits.push_back(o.id);
      }
    }
  }
  return scratch.hits;
}

std::vector<std::uint64_t> PeerStore::match(
    NodeId peer, std::span<const TermId> query) const {
  MatchScratch scratch;
  const auto hits = match(peer, query, scratch);
  return {hits.begin(), hits.end()};
}

std::uint64_t PeerStore::base_postings(NodeId peer) const noexcept {
  const std::uint32_t lo = flat_.obj_offsets[peer];
  const std::uint32_t hi = flat_.obj_offsets[peer + 1];
  return flat_.obj_term_offsets[hi] - flat_.obj_term_offsets[lo];
}

bool PeerStore::peer_live(NodeId peer) const {
  if (peer >= num_peers_) {
    throw std::out_of_range("PeerStore::peer_live: bad peer");
  }
  return live_unchecked(peer);
}

void PeerStore::apply_membership(std::span<const NodeId> joins,
                                 std::span<const NodeId> leaves) {
  if (!finalized_) {
    throw std::logic_error("PeerStore::apply_membership: finalize() first");
  }
  const auto check = [this](NodeId p) {
    if (p >= num_peers_) {
      throw std::out_of_range("PeerStore::apply_membership: bad peer");
    }
  };
  for (NodeId p : joins) {
    check(p);
    if (!dead_.empty() && dead_[p]) {
      dead_[p] = 0;
      dead_postings_ -= base_postings(p);
    }
  }
  for (NodeId p : leaves) {
    check(p);
    if (dead_.empty()) dead_.assign(num_peers_, 0);
    if (!dead_[p]) {
      dead_[p] = 1;
      dead_postings_ += base_postings(p);
    }
  }
}

void PeerStore::add_object_delta(NodeId peer, std::uint64_t id,
                                 std::vector<TermId> terms) {
  if (!finalized_) {
    throw std::logic_error("PeerStore::add_object_delta: finalize() first");
  }
  if (peer >= num_peers_) {
    throw std::out_of_range("PeerStore::add_object_delta: bad peer");
  }
  if (total_ >= std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error(
        "PeerStore::add_object_delta: object ordinal space exhausted");
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  DeltaPeer& d = delta_[peer];
  if (!terms.empty()) {
    std::vector<TermId> merged;
    merged.reserve(d.terms.size() + terms.size());
    std::set_union(d.terms.begin(), d.terms.end(), terms.begin(), terms.end(),
                   std::back_inserter(merged));
    d.terms = std::move(merged);
  }
  delta_postings_ += terms.size();
  ++delta_objects_;
  ++total_;
  // Approximate score from BASE-layer statistics (exact recomputation
  // happens at compact()): base idf per term, unseen terms treated as
  // df = 1 (maximally rare), replica count 1 (delta ids are fresh).
  // Reads through the flat_ spans so mapped views price deltas too.
  const double n_objects = static_cast<double>(flat_.obj_ids.size());
  double sum = 0.0;
  for (const TermId t : terms) {
    const auto it = std::lower_bound(flat_.index_terms.begin(),
                                     flat_.index_terms.end(), t);
    double df = 1.0;
    if (it != flat_.index_terms.end() && *it == t) {
      const auto ti = static_cast<std::size_t>(it - flat_.index_terms.begin());
      df = static_cast<double>(flat_.index_offsets[ti + 1] -
                               flat_.index_offsets[ti]);
    }
    sum += std::log2(1.0 + std::max(1.0, n_objects) / df);
  }
  d.scores.push_back(static_cast<float>(sum));
  d.objects.push_back(Object{id, std::move(terms)});
}

void PeerStore::compact(std::size_t threads) {
  if (!finalized_) {
    throw std::logic_error("PeerStore::compact: finalize() first");
  }
  if (delta_.empty()) return;
  const std::size_t n_threads =
      threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                   : threads;
  const std::size_t n = num_peers_;
  // Spans into the CURRENT storage (owned vectors or mapped memory); the
  // fold reads through them and only replaces the members at the end, so
  // nothing aliases mid-copy.
  const FlatLayout old = flat_;
  const std::uint64_t new_terms_total =
      static_cast<std::uint64_t>(old.obj_terms_flat.size()) + delta_postings_;
  if (total_ > std::numeric_limits<std::uint32_t>::max() ||
      new_terms_total > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("PeerStore::compact: too many objects for CSR");
  }

  // Per-peer delta lookup without map probes in the hot loops.
  std::vector<const DeltaPeer*> dp(n, nullptr);
  std::vector<std::uint32_t> add_objs(n, 0), add_terms(n, 0);
  for (const auto& [p, d] : delta_) {
    dp[p] = &d;
    add_objs[p] = static_cast<std::uint32_t>(d.objects.size());
    std::uint32_t t = 0;
    for (const Object& o : d.objects) {
      t += static_cast<std::uint32_t>(o.terms.size());
    }
    add_terms[p] = t;
  }

  const std::size_t n_blocks = std::max<std::size_t>(
      1, std::min(n_threads, n));
  std::vector<std::size_t> peer_bounds(n_blocks + 1);
  for (std::size_t b = 0; b <= n_blocks; ++b) {
    peer_bounds[b] = n * b / n_blocks;
  }
  const auto for_blocks = [&](auto&& fn) {
    util::parallel_for_blocks(n_blocks, n_blocks,
                              [&](std::size_t b_begin, std::size_t b_end) {
                                for (std::size_t b = b_begin; b < b_end; ++b) {
                                  fn(peer_bounds[b], peer_bounds[b + 1]);
                                }
                              });
  };
  const auto old_row = [&](std::size_t p) {
    return old.peer_terms_flat.subspan(
        old.peer_term_offsets[p],
        old.peer_term_offsets[p + 1] - old.peer_term_offsets[p]);
  };

  // Pass 1 (parallel): merged peer-term row sizes (sorted-unique union
  // of the base row and the delta row).
  std::vector<std::uint32_t> row_size(n);
  for_blocks([&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      const auto base = old_row(p);
      if (dp[p] == nullptr) {
        row_size[p] = static_cast<std::uint32_t>(base.size());
        continue;
      }
      const auto& extra = dp[p]->terms;
      std::size_t i = 0, j = 0, count = 0;
      while (i < base.size() && j < extra.size()) {
        if (base[i] < extra[j]) {
          ++i;
        } else if (extra[j] < base[i]) {
          ++j;
        } else {
          ++i;
          ++j;
        }
        ++count;
      }
      row_size[p] = static_cast<std::uint32_t>(count + (base.size() - i) +
                                               (extra.size() - j));
    }
  });

  // Prefix sums (sequential, O(n)).
  std::vector<std::uint32_t> obj_offsets(n + 1, 0);
  std::vector<std::uint32_t> term_base(n + 1, 0);
  std::vector<std::uint32_t> peer_term_offsets(n + 1, 0);
  for (std::size_t p = 0; p < n; ++p) {
    const std::uint32_t old_objs = old.obj_offsets[p + 1] - old.obj_offsets[p];
    const std::uint32_t old_terms =
        old.obj_term_offsets[old.obj_offsets[p + 1]] -
        old.obj_term_offsets[old.obj_offsets[p]];
    obj_offsets[p + 1] = obj_offsets[p] + old_objs + add_objs[p];
    term_base[p + 1] = term_base[p] + old_terms + add_terms[p];
    peer_term_offsets[p + 1] = peer_term_offsets[p] + row_size[p];
  }

  // Pass 2 (parallel): scatter each peer's slice — base objects in
  // ordinal order, then delta objects in insertion order (exactly the
  // add_object() order finalize()-from-scratch would see).
  std::vector<std::uint64_t> obj_ids(obj_offsets[n]);
  std::vector<std::uint32_t> obj_term_offsets(
      static_cast<std::size_t>(obj_offsets[n]) + 1);
  obj_term_offsets[0] = 0;
  std::vector<TermId> obj_terms_flat(term_base[n]);
  std::vector<TermId> peer_terms_flat(peer_term_offsets[n]);
  for_blocks([&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      std::uint32_t ord = obj_offsets[p];
      std::uint32_t cursor = term_base[p];
      for (std::uint32_t o = old.obj_offsets[p]; o < old.obj_offsets[p + 1];
           ++o) {
        obj_ids[ord] = old.obj_ids[o];
        const auto terms = old.obj_terms_flat.subspan(
            old.obj_term_offsets[o],
            old.obj_term_offsets[o + 1] - old.obj_term_offsets[o]);
        std::copy(terms.begin(), terms.end(),
                  obj_terms_flat.begin() + cursor);
        cursor += static_cast<std::uint32_t>(terms.size());
        obj_term_offsets[ord + 1] = cursor;
        ++ord;
      }
      if (dp[p] != nullptr) {
        for (const Object& o : dp[p]->objects) {
          obj_ids[ord] = o.id;
          std::copy(o.terms.begin(), o.terms.end(),
                    obj_terms_flat.begin() + cursor);
          cursor += static_cast<std::uint32_t>(o.terms.size());
          obj_term_offsets[ord + 1] = cursor;
          ++ord;
        }
      }
      const auto base = old_row(p);
      if (dp[p] == nullptr) {
        std::copy(base.begin(), base.end(),
                  peer_terms_flat.begin() + peer_term_offsets[p]);
      } else {
        const auto& extra = dp[p]->terms;
        std::set_union(base.begin(), base.end(), extra.begin(), extra.end(),
                       peer_terms_flat.begin() + peer_term_offsets[p]);
      }
    }
  });

  obj_offsets_ = std::move(obj_offsets);
  obj_ids_ = std::move(obj_ids);
  obj_term_offsets_ = std::move(obj_term_offsets);
  obj_terms_flat_ = std::move(obj_terms_flat);
  peer_term_offsets_ = std::move(peer_term_offsets);
  peer_terms_flat_ = std::move(peer_terms_flat);
  rebuild_index(n_threads);
  compute_scores(n_threads);

  delta_.clear();
  delta_objects_ = 0;
  delta_postings_ = 0;
  // Any retained build vectors describe only the base layer now; drop
  // them rather than let a later finalize() silently lose the folded
  // objects. Views become owned stores.
  peers_.clear();
  peers_.shrink_to_fit();
  has_build_data_ = false;
  borrowed_ = false;
  repoint_flat();
  // Tombstoned peers may have gained postings in the fold; recount the
  // staleness debt against the new base layer.
  if (!dead_.empty()) {
    dead_postings_ = 0;
    for (NodeId p = 0; p < n; ++p) {
      if (dead_[p]) dead_postings_ += base_postings(p);
    }
  }
}

PeerStore peer_store_from_crawl(const trace::CrawlSnapshot& snapshot,
                                std::size_t num_nodes) {
  PeerStore store(num_nodes);
  for (std::size_t p = 0; p < snapshot.num_peers(); ++p) {
    const auto node = static_cast<NodeId>(p % num_nodes);
    for (trace::ObjectKey key : snapshot.peer_objects(p)) {
      store.add_object(node, key.bits, snapshot.object_terms(key));
    }
  }
  store.finalize();
  return store;
}

}  // namespace qcp2p::sim
