#include "src/sim/network.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace qcp2p::sim {

Placement place_uniform(std::size_t num_objects, std::size_t copies,
                        std::size_t num_nodes, util::Rng& rng) {
  if (copies > num_nodes) {
    throw std::invalid_argument("place_uniform: copies > num_nodes");
  }
  Placement p;
  p.holders.resize(num_objects);
  for (auto& holders : p.holders) {
    holders.reserve(copies);
    while (holders.size() < copies) {
      const auto peer = static_cast<NodeId>(rng.bounded(num_nodes));
      if (std::find(holders.begin(), holders.end(), peer) == holders.end()) {
        holders.push_back(peer);
      }
    }
    std::sort(holders.begin(), holders.end());
  }
  return p;
}

Placement place_by_counts(std::span<const std::uint64_t> replica_counts,
                          std::size_t num_nodes, util::Rng& rng) {
  Placement p;
  p.holders.resize(replica_counts.size());
  for (std::size_t o = 0; o < replica_counts.size(); ++o) {
    const std::size_t copies = static_cast<std::size_t>(
        std::min<std::uint64_t>(replica_counts[o], num_nodes));
    auto& holders = p.holders[o];
    holders.reserve(copies);
    while (holders.size() < copies) {
      const auto peer = static_cast<NodeId>(rng.bounded(num_nodes));
      if (std::find(holders.begin(), holders.end(), peer) == holders.end()) {
        holders.push_back(peer);
      }
    }
    std::sort(holders.begin(), holders.end());
  }
  return p;
}

std::vector<std::uint64_t> sample_replica_counts(
    std::span<const std::uint64_t> crawl_counts, std::size_t num_objects,
    util::Rng& rng) {
  if (crawl_counts.empty()) {
    throw std::invalid_argument("sample_replica_counts: empty source");
  }
  std::vector<std::uint64_t> counts(num_objects);
  for (auto& c : counts) {
    c = crawl_counts[rng.bounded(crawl_counts.size())];
  }
  return counts;
}

void PeerStore::add_object(NodeId peer, std::uint64_t id,
                           std::vector<TermId> terms) {
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  peers_.at(peer).objects.push_back(Object{id, std::move(terms)});
  ++total_;
  finalized_ = false;
}

void PeerStore::finalize() {
  if (total_ > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("PeerStore::finalize: too many objects for CSR");
  }
  const std::size_t n = peers_.size();

  // Object ordinal space + CSR-packed per-object term lists.
  obj_offsets_.assign(n + 1, 0);
  obj_ids_.clear();
  obj_ids_.reserve(static_cast<std::size_t>(total_));
  obj_term_offsets_.assign(1, 0);
  obj_term_offsets_.reserve(static_cast<std::size_t>(total_) + 1);
  obj_terms_flat_.clear();
  for (std::size_t p = 0; p < n; ++p) {
    obj_offsets_[p] = static_cast<std::uint32_t>(obj_ids_.size());
    for (const Object& o : peers_[p].objects) {
      obj_ids_.push_back(o.id);
      obj_terms_flat_.insert(obj_terms_flat_.end(), o.terms.begin(),
                             o.terms.end());
      obj_term_offsets_.push_back(
          static_cast<std::uint32_t>(obj_terms_flat_.size()));
    }
  }
  obj_offsets_[n] = static_cast<std::uint32_t>(obj_ids_.size());

  // Per-peer sorted unique term rows (the may_match prefilter).
  peer_term_offsets_.assign(1, 0);
  peer_term_offsets_.reserve(n + 1);
  peer_terms_flat_.clear();
  std::vector<TermId> row;
  for (std::size_t p = 0; p < n; ++p) {
    row.clear();
    for (const Object& o : peers_[p].objects) {
      row.insert(row.end(), o.terms.begin(), o.terms.end());
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    peer_terms_flat_.insert(peer_terms_flat_.end(), row.begin(), row.end());
    peer_term_offsets_.push_back(
        static_cast<std::uint32_t>(peer_terms_flat_.size()));
  }

  // Inverted index: (term, ordinal) pairs sorted by term then ordinal.
  // Ordinals ascend with peer id, so each term's posting row is peer-
  // grouped and a peer's slice is one binary search away.
  std::vector<std::pair<TermId, std::uint32_t>> entries;
  entries.reserve(obj_terms_flat_.size());
  for (std::uint32_t ord = 0;
       ord < static_cast<std::uint32_t>(obj_ids_.size()); ++ord) {
    for (std::uint32_t k = obj_term_offsets_[ord];
         k < obj_term_offsets_[ord + 1]; ++k) {
      entries.emplace_back(obj_terms_flat_[k], ord);
    }
  }
  std::sort(entries.begin(), entries.end());
  index_terms_.clear();
  index_offsets_.assign(1, 0);
  postings_.clear();
  postings_.reserve(entries.size());
  for (const auto& [term, ord] : entries) {
    if (index_terms_.empty() || index_terms_.back() != term) {
      index_terms_.push_back(term);
      index_offsets_.push_back(static_cast<std::uint32_t>(postings_.size()));
    }
    postings_.push_back(ord);
    index_offsets_.back() = static_cast<std::uint32_t>(postings_.size());
  }

  finalized_ = true;
}

std::span<const TermId> PeerStore::peer_terms(NodeId peer) const {
  if (peer >= peers_.size()) {
    throw std::out_of_range("PeerStore::peer_terms: bad peer");
  }
  if (!finalized_) return {};
  return {peer_terms_flat_.data() + peer_term_offsets_[peer],
          peer_term_offsets_[peer + 1] - peer_term_offsets_[peer]};
}

bool PeerStore::may_match(NodeId peer, std::span<const TermId> query) const {
  const std::span<const TermId> terms = peer_terms(peer);
  for (TermId t : query) {
    if (!std::binary_search(terms.begin(), terms.end(), t)) return false;
  }
  return true;
}

std::vector<std::uint64_t> PeerStore::match_reference(
    NodeId peer, std::span<const TermId> query) const {
  std::vector<std::uint64_t> hits;
  if (query.empty()) return hits;
  for (const Object& o : peers_.at(peer).objects) {
    bool all = true;
    for (TermId t : query) {
      if (!std::binary_search(o.terms.begin(), o.terms.end(), t)) {
        all = false;
        break;
      }
    }
    if (all) hits.push_back(o.id);
  }
  return hits;
}

std::span<const std::uint64_t> PeerStore::match(NodeId peer,
                                                std::span<const TermId> query,
                                                MatchScratch& scratch) const {
  scratch.hits.clear();
  if (query.empty()) return {};
  if (!finalized_) {
    // Build phase: fall back to the reference scan (tests and ad-hoc
    // stores); identical result set, no flat layout required.
    scratch.hits = match_reference(peer, query);
    return scratch.hits;
  }
  // Flat prefilter first: most flood probes miss at least one term.
  if (!may_match(peer, query)) return {};

  // Every query term is somewhere in the peer's library. Intersect the
  // rarest term's posting subrange for this peer against the other
  // terms' CSR-packed object term lists.
  const std::uint32_t lo = obj_offsets_[peer];
  const std::uint32_t hi = obj_offsets_[peer + 1];
  const std::uint32_t* seed_begin = nullptr;
  const std::uint32_t* seed_end = nullptr;
  for (TermId t : query) {
    const auto it =
        std::lower_bound(index_terms_.begin(), index_terms_.end(), t);
    if (it == index_terms_.end() || *it != t) return {};  // unreachable after
                                                          // may_match, kept
                                                          // for safety
    const auto ti = static_cast<std::size_t>(it - index_terms_.begin());
    const std::uint32_t* row = postings_.data();
    const std::uint32_t* begin = std::lower_bound(
        row + index_offsets_[ti], row + index_offsets_[ti + 1], lo);
    const std::uint32_t* end = std::lower_bound(
        begin, row + index_offsets_[ti + 1], hi);
    if (begin == end) return {};
    if (seed_begin == nullptr || end - begin < seed_end - seed_begin) {
      seed_begin = begin;
      seed_end = end;
    }
  }
  for (const std::uint32_t* it = seed_begin; it != seed_end; ++it) {
    const std::uint32_t ord = *it;
    const TermId* terms = obj_terms_flat_.data();
    const TermId* tb = terms + obj_term_offsets_[ord];
    const TermId* te = terms + obj_term_offsets_[ord + 1];
    bool all = true;
    for (TermId t : query) {
      if (!std::binary_search(tb, te, t)) {
        all = false;
        break;
      }
    }
    if (all) scratch.hits.push_back(obj_ids_[ord]);
  }
  return scratch.hits;
}

std::vector<std::uint64_t> PeerStore::match(
    NodeId peer, std::span<const TermId> query) const {
  MatchScratch scratch;
  const auto hits = match(peer, query, scratch);
  return {hits.begin(), hits.end()};
}

PeerStore peer_store_from_crawl(const trace::CrawlSnapshot& snapshot,
                                std::size_t num_nodes) {
  PeerStore store(num_nodes);
  for (std::size_t p = 0; p < snapshot.num_peers(); ++p) {
    const auto node = static_cast<NodeId>(p % num_nodes);
    for (trace::ObjectKey key : snapshot.peer_objects(p)) {
      store.add_object(node, key.bits, snapshot.object_terms(key));
    }
  }
  store.finalize();
  return store;
}

}  // namespace qcp2p::sim
