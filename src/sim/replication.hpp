// Proactive replication policies (Cohen & Shenker, SIGCOMM'02; Lv et
// al., ICS'02): if the overlay could CHOOSE replica counts under a total
// storage budget, how should it allocate them across objects with skewed
// query rates?
//
//   * uniform:       every object gets the same number of copies;
//   * proportional:  copies ∝ query rate (what passive caching drifts to);
//   * square-root:   copies ∝ sqrt(query rate) — provably minimizes the
//                    expected random-probe search size.
//
// This frames the paper's finding from the opposite side: the measured
// network's organic replication is far from ANY of these allocations
// for the long tail (singletons dominate regardless of demand), and
// bench/exp_replication_policy quantifies how much search cost that
// leaves on the table.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.hpp"

namespace qcp2p::sim {

enum class ReplicationPolicy : std::uint8_t {
  kUniform,
  kProportional,
  kSquareRoot,
};

/// Allocates per-object replica counts under a total copy budget.
/// @param query_rates  relative query rate per object (>= 0).
/// @param total_copies budget across all objects (>= objects; every
///                     object keeps at least its owner's copy).
/// @param max_copies   per-object cap (e.g. the number of peers).
[[nodiscard]] std::vector<std::uint64_t> allocate_replicas(
    std::span<const double> query_rates, std::uint64_t total_copies,
    ReplicationPolicy policy, std::uint64_t max_copies);

/// Expected random-probe search size under an allocation: drawing peers
/// uniformly with replacement, a query for object i needs n / r_i probes
/// in expectation; averaging over the query-rate distribution gives
///   E[probes] = n * sum_i q_i / r_i   (q_i normalized).
[[nodiscard]] double expected_search_size(std::span<const double> query_rates,
                                          std::span<const std::uint64_t> replicas,
                                          std::uint64_t num_peers);

/// The analytical optimum for comparison: square-root allocation's
/// expected search size with a real-valued (unrounded) allocation.
[[nodiscard]] double optimal_search_size(std::span<const double> query_rates,
                                         std::uint64_t total_copies,
                                         std::uint64_t num_peers);

}  // namespace qcp2p::sim
