// Unified search-engine contract for the Fig 8 / Section V engine
// comparisons: one Query, one SearchOutcome, one EngineContext, so every
// strategy (flood, random walk, Gia, hybrid, DHT-only, QRP) runs under
// an identical query/measurement harness and new engines plug into every
// bench and the conformance matrix through the registry alone.
//
// Contract:
//   * A Query describes WHAT is asked (source, conjunctive terms or — for
//     Fig 8-style placement workloads — a sorted holder set), plus the
//     per-query knobs (TTL for flood-family engines, step budget for
//     walk-family engines, optional liveness mask, trial index).
//   * A SearchOutcome is the engine-independent measurement: hits,
//     messages, per-hop histogram (flood engines), peers probed, success,
//     FaultStats, and a small typed `extras` payload for the counters
//     only one engine family produces (HybridExtras, QrpExtras). The
//     per-engine result structs (FloodSearchResult, RandomWalkResult,
//     GiaSearchResult, HybridResult, QrpNetwork::SearchResult) remain the
//     primitives' return types; SearchOutcome is the view every bench and
//     conformance test consumes.
//   * An EngineContext is the per-worker mutable state (SearchScratch +
//     the trial's rng stream); engines themselves are immutable after
//     construction and shared read-only across TrialRunner workers.
//   * Fault injection composes from the OUTSIDE: engines implement the
//     per-attempt hooks below, and the one shared drive() loop (used by
//     both the plain path and the with_faults() decorator) owns the
//     retry / timeout / backoff / escalation schedule. There is exactly
//     one fault-aware code path per engine.
//   * Degenerate worlds are defined, not UB: a query against an empty
//     graph (or an engine whose world lacks content) yields the empty
//     SearchOutcome.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/network.hpp"
#include "src/sim/search_scratch.hpp"
#include "src/sim/timing.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

/// One search request. Spans alias caller-owned storage (the bench's
/// query workload / placement) and must outlive the search call.
struct Query {
  NodeId source = 0;
  /// Conjunctive term query (content search). Ignored in locate mode.
  std::span<const TermId> terms{};
  /// Sorted holder node ids (Fig 8 placement workloads). Non-empty
  /// switches the engine into locate mode: success = any holder found.
  std::span<const NodeId> holders{};
  /// Measurement-only (content mode): the peers known to hold matching
  /// content, so the fault decorator can fill SearchOutcome::degradation
  /// ("failed because nothing was reachable" vs "gave up early").
  /// Engines never read this; empty skips the audit.
  std::span<const NodeId> audit_holders{};
  /// Hop budget for the flood-family engines (flood, hybrid, QRP).
  std::uint32_t ttl = 3;
  /// Step budget for the walk-family engines (per walker for
  /// random-walk, total for Gia). 0 = the engine's configured default.
  std::uint32_t budget = 0;
  /// Optional liveness mask (plain path). Under with_faults() the
  /// decorator overwrites this with the plan's crash mask.
  const std::vector<bool>* online = nullptr;
  /// Trial index: keys the fault plan's per-message hash stream.
  std::uint64_t trial = 0;
  /// Ranked mode (content search): ask for the k best-scored matches.
  /// 0 keeps the legacy set semantics bit-for-bit — no scoring, no
  /// early termination, SearchOutcome::top_k stays empty.
  std::uint32_t k = 0;
  /// Ranked-mode admission threshold: matches scoring below it are
  /// neither collected nor counted toward k. Ignored when k == 0.
  float min_score = 0.0f;

  [[nodiscard]] bool is_locate() const noexcept { return !holders.empty(); }
  /// True when the query asks for a ranked top-k answer.
  [[nodiscard]] bool ranked() const noexcept {
    return k != 0 && holders.empty();
  }
};

/// Counters only the flood+DHT family produces.
struct HybridExtras {
  std::uint64_t flood_messages = 0;
  std::uint64_t dht_messages = 0;
  bool used_dht = false;
};

/// Counters only the QRP engine produces.
struct QrpExtras {
  std::uint64_t up_messages = 0;      // ultrapeer-tier transmissions
  std::uint64_t leaf_messages = 0;    // query deliveries to leaves
  std::uint64_t leaf_suppressed = 0;  // deliveries QRP filtered out
};

/// Counters only the adaptive query-centric engine produces.
struct AdaptiveExtras {
  /// Forwards chosen because a neighbor's synopsis matched every term.
  std::uint64_t guided_forwards = 0;
  /// Blind fallback forwards (no synopsis on the hop matched).
  std::uint64_t fallback_forwards = 0;
  /// Neighbor candidates a synopsis screened out.
  std::uint64_t synopsis_filtered = 0;
};

using EngineExtras =
    std::variant<std::monostate, HybridExtras, QrpExtras, AdaptiveExtras>;

/// Engine-independent measurement of one search.
struct SearchOutcome {
  /// Matching object ids (content search; sorted, deduplicated) or the
  /// holder node ids stepped on (walk locate; in visit order).
  std::vector<std::uint64_t> hits;
  /// Total transmissions charged (all phases, all retry attempts).
  std::uint64_t messages = 0;
  /// Flood engines, content mode: nodes first reached per hop,
  /// concatenated across retry attempts. Empty for the other engines
  /// (and for flood locate, which mirrors reaches_any and skips it).
  std::vector<std::uint64_t> per_hop;
  std::size_t peers_probed = 0;
  bool success = false;
  FaultStats fault;
  EngineExtras extras;
  /// Ranked view (Query::k > 0 only): during the attempt loop a raw
  /// scored-match accumulator; after finish() the canonical ranking —
  /// deduplicated, sorted by descending score (ascending id on ties),
  /// thresholded at Query::min_score, truncated to k. `hits` then
  /// mirrors its object ids in ascending order so every set-semantics
  /// consumer keeps working. Always empty when k == 0.
  std::vector<ScoredMatch> top_k;
  /// Time axis (first-hit latency, simulated clock, DES events). Exact
  /// for the DES-backed engines, estimated for the round-based ones that
  /// price hops through a TimingModel, empty for engines with no time
  /// model. See timing.hpp.
  std::optional<TimingRecord> timing;
  /// Graceful-degradation audit, filled by the fault decorator when the
  /// plan is active and the query carries holder knowledge (locate
  /// holders or Query::audit_holders). Empty otherwise.
  std::optional<DegradationRecord> degradation;
};

/// Typed access to the engine-specific payload; nullptr when the
/// outcome's engine does not produce T.
template <typename T>
[[nodiscard]] const T* extras_as(const SearchOutcome& out) noexcept {
  return std::get_if<T>(&out.extras);
}

/// Per-worker mutable state: one per TrialRunner shard. `rng` points at
/// the current trial's stream and is re-seated every trial.
///
/// `state` is an engine-owned per-worker world (e.g. a DES simulator +
/// servent network), created lazily through worker_state() below. It
/// follows the same determinism rule as `scratch`: an engine may reuse
/// it across trials only if its prior contents cannot affect results
/// (the DES engines reset their world at the start of every query).
struct EngineContext {
  SearchScratch scratch;
  util::Rng* rng = nullptr;
  /// Which engine instance `state` belongs to (contexts are shared
  /// across the engines of a sweep; a different owner means rebuild).
  const void* state_owner = nullptr;
  std::shared_ptr<void> state;
};

/// Lazily builds (or fetches) the per-worker state a stateful engine
/// keeps in its EngineContext. `make` returns a std::shared_ptr<T> and
/// runs once per (worker, engine) pair — TrialRunner gives each shard
/// its own context, so the state is never shared across threads.
template <typename T, typename MakeFn>
[[nodiscard]] T& worker_state(const void* owner, EngineContext& ctx,
                              MakeFn&& make) {
  if (ctx.state_owner != owner || ctx.state == nullptr) {
    ctx.state = std::forward<MakeFn>(make)();
    ctx.state_owner = owner;
  }
  return *static_cast<T*>(ctx.state.get());
}

/// Shared result tail: sorts + deduplicates a hit list accumulated
/// across peers (and across retry attempts).
void sort_unique_hits(std::vector<std::uint64_t>& hits);

/// Shared probe stage: matches each peer against the store, appending
/// its hits and counting it as probed.
void probe_peers(const PeerStore& store, std::span<const TermId> terms,
                 std::span<const NodeId> peers, SearchScratch& scratch,
                 std::vector<std::uint64_t>& hits, std::size_t& peers_probed);

/// Ranked twin of probe_peers(): scored matches at or above `min_score`
/// are appended to `ranked`, and the return value is how many of them
/// were NEW distinct objects (tracked in scratch.topk_seen across the
/// whole query). Admissions only ever APPEND to `ranked`, so the suffix
/// past the pre-call size is exactly what this probe contributed — the
/// early-termination rule feeds that suffix to a TopKTracker.
std::size_t probe_peers_ranked(const PeerStore& store,
                               std::span<const TermId> terms,
                               std::span<const NodeId> peers, float min_score,
                               SearchScratch& scratch,
                               std::vector<ScoredMatch>& ranked,
                               std::size_t& peers_probed);

/// Ranked early termination (DESIGN.md §11): an expansion stops once the
/// k-th best score is STABLE — no probe admitted anything into the
/// current top-k for a full observation window. TopKTracker below is the
/// stability metric; these windows set the granularity per engine
/// family. Walk family (random-walk, gia): consecutive probes without a
/// top-k improvement that end the walk once at least one admitted
/// result is held.
inline constexpr std::uint32_t kRankedStallProbes = 8;

/// Frontier family (flood, adaptive): consecutive frontier rounds
/// without a top-k improvement that end the expansion once at least one
/// admitted result is held. One round proved too eager — a rare
/// top-scored object often arrives one quiet round later — so the
/// window is two; recall@10 vs the exhaustive oracle (bench/exp_topk) is
/// the tuning evidence.
inline constexpr std::uint32_t kRankedStallRounds = 2;

/// Running "k-th best admitted score" tracker behind the stability rule:
/// a size-<=k min-heap of the best scores seen so far. note() returns
/// true iff the score entered the top-k — any admission improves it
/// while fewer than k candidates are held, so the rule degenerates to
/// plain dryness until k candidates exist. Because the stop consults the
/// requested k, a smaller k terminates no later than a larger one (an
/// entry into the top-1 is also an entry into the top-10, so the larger
/// k's stall window resets at least as often).
class TopKTracker {
 public:
  explicit TopKTracker(std::uint32_t k) : k_(k) {}

  bool note(float score) {
    if (k_ == 0) return false;
    if (heap_.size() < k_) {
      heap_.push_back(score);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      return true;
    }
    if (score <= heap_.front()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.back() = score;
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    return true;
  }

  /// Notes every entry of `ranked` from index `from` (the admissions one
  /// probe or round appended); true iff any improved the top-k. Retry
  /// attempts seed a fresh tracker with note_from(out.top_k, 0) so prior
  /// attempts' candidates count toward stability.
  bool note_from(const std::vector<ScoredMatch>& ranked, std::size_t from) {
    bool improved = false;
    for (std::size_t i = from; i < ranked.size(); ++i) {
      improved |= note(ranked[i].score);
    }
    return improved;
  }

 private:
  std::uint32_t k_;
  std::vector<float> heap_;
};

/// Scored admission for a single match: appends to `ranked` iff the
/// score clears `min_score`, returns 1 when the object is new (see
/// probe_peers_ranked).
std::size_t admit_ranked(const ScoredMatch& m, float min_score,
                         SearchScratch& scratch,
                         std::vector<ScoredMatch>& ranked);

/// Shared ranked result tail: canonicalizes a raw scored accumulator —
/// dedup by object id (max score wins), sort by descending score with
/// ascending id tie-break, drop entries below min_score, truncate to k —
/// and mirrors the surviving ids into `hits` (ascending). Engines call
/// this from finish() when query.ranked(); the base finish() does so
/// automatically.
void finish_ranked(const Query& query, SearchOutcome& out);

/// A search strategy. Instances are immutable after construction and
/// shared read-only across workers; all per-query state lives in the
/// EngineContext and the outcome.
///
/// Engines implement the protected per-attempt hooks; the one drive()
/// loop sequences them — identically for the plain path (search()) and
/// the fault-injected path (with_faults() in fault_decorator.hpp), which
/// is the only place retries, timeouts, backoff, and escalation happen.
class SearchEngine {
 public:
  virtual ~SearchEngine() = default;

  /// Registry name ("flood", "random-walk", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True when the engine supports locate (holder-placement) queries.
  [[nodiscard]] virtual bool can_locate() const noexcept { return false; }

  /// Plain (fault-free) search. The decorator overrides this; concrete
  /// engines implement the hooks instead.
  [[nodiscard]] virtual SearchOutcome search(const Query& query,
                                             EngineContext& ctx) const {
    return drive(*this, query, ctx, nullptr, nullptr);
  }

 protected:
  /// False aborts the search with the empty outcome (offline source,
  /// empty world, empty query where the engine defines that as a no-op).
  [[nodiscard]] virtual bool preflight(const Query& query,
                                       const FaultSession* faults) const;

  /// Runs once before the attempt loop (e.g. flood's fault-free local
  /// probe, charged exactly once regardless of retries).
  virtual void begin(const Query& query, EngineContext& ctx,
                     SearchOutcome& out) const;

  /// One attempt, ACCUMULATING into `out`. `faults`/`policy` are null on
  /// the plain path; engines thread them into their primitives.
  virtual void attempt(const Query& query, EngineContext& ctx,
                       FaultSession* faults, const RecoveryPolicy* policy,
                       SearchOutcome& out) const = 0;

  /// Retry predicate: default "found anything" (success flag or hits).
  [[nodiscard]] virtual bool satisfied(const SearchOutcome& out) const;

  /// False opts out of decorator-level retries (hybrid and dht-only:
  /// their recovery lives inside the attempt — the DHT fallback and
  /// Chord's route-around respectively).
  [[nodiscard]] virtual bool retryable() const noexcept { return true; }

  /// Widens the query before a retry. Default: expanding-ring TTL
  /// escalation (flood family); walk engines override to scale `budget`.
  virtual void escalate(Query& query, const RecoveryPolicy& policy) const;

  /// Result tail after the attempt loop. Default: sort/dedup hits and
  /// derive success from them; engines with bespoke success (Gia) or
  /// undeduplicated hits (walk locate) override.
  virtual void finish(const Query& query, SearchOutcome& out) const;

  /// The one attempt/retry loop. Static so the decorator (and engines
  /// composing other engines, e.g. hybrid's flood phase) can drive any
  /// engine's protected hooks.
  [[nodiscard]] static SearchOutcome drive(const SearchEngine& engine,
                                           Query query, EngineContext& ctx,
                                           FaultSession* faults,
                                           const RecoveryPolicy* policy);

  friend class FaultInjectedEngine;
};

}  // namespace qcp2p::sim
