// Query-result caching at forwarding peers — the last classic
// unstructured-search optimization in the paper's design space.
//
// Ultrapeers remember recent (query -> results) pairs and answer
// repeated queries without re-flooding. Like QRP and shortcuts, caching
// amortizes REPEATED demand, so the paper's workload splits it cleanly:
// the stable persistent head caches beautifully; the rare/transient tail
// (most queries, per exp_rare_queries) never repeats at the same cache
// and pays full price.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/sim/flood.hpp"
#include "src/sim/network.hpp"

namespace qcp2p::sim {

struct ResultCacheParams {
  /// Cache entries per peer (LRU).
  std::size_t capacity = 64;
  /// Flood TTL used on a cache miss.
  std::uint32_t flood_ttl = 3;
};

struct CachedSearchResult {
  std::vector<std::uint64_t> results;
  std::uint64_t messages = 0;
  bool cache_hit = false;

  [[nodiscard]] bool success() const noexcept { return !results.empty(); }
};

/// Per-peer LRU of query->results; shared flood fallback.
class CachingSearchNetwork {
 public:
  CachingSearchNetwork(const Graph& graph, const PeerStore& store,
                       const ResultCacheParams& params = {});

  /// Checks the source's cache, then its neighbors' caches (1 message
  /// each, as piggybacked cache probes), then floods; successful results
  /// populate the source's cache.
  [[nodiscard]] CachedSearchResult search(NodeId source,
                                          std::span<const TermId> query);

  /// Warms `peer`'s cache externally (a replicated result push in the
  /// serving path). Follows insert() semantics: an existing entry is
  /// refreshed to most-recent position; empty result sets are not cached.
  void prime(NodeId peer, std::span<const TermId> query,
             std::vector<std::uint64_t> results);

  [[nodiscard]] double hit_rate() const noexcept {
    return searches_ == 0 ? 0.0
                          : static_cast<double>(hits_) /
                                static_cast<double>(searches_);
  }
  [[nodiscard]] std::size_t cached_entries(NodeId peer) const {
    return caches_.at(peer).order.size();
  }

 private:
  struct QueryKey {
    std::uint64_t hash = 0;
    friend bool operator==(const QueryKey&, const QueryKey&) = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const QueryKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash);
    }
  };
  struct PeerCache {
    std::list<QueryKey> order;  // front = most recent
    std::unordered_map<QueryKey,
                       std::pair<std::list<QueryKey>::iterator,
                                 std::vector<std::uint64_t>>,
                       KeyHash>
        entries;
  };

  [[nodiscard]] QueryKey key_of(std::span<const TermId> query);
  [[nodiscard]] const std::vector<std::uint64_t>* lookup(NodeId peer,
                                                         const QueryKey& key);
  void insert(NodeId peer, const QueryKey& key,
              std::vector<std::uint64_t> results);

  const Graph* graph_;
  const PeerStore* store_;
  ResultCacheParams params_;
  std::vector<PeerCache> caches_;
  FloodEngine engine_;
  /// key_of's sort/unique workspace (reused across queries).
  std::vector<TermId> key_scratch_;
  std::uint64_t searches_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace qcp2p::sim
