// Query-result caching at forwarding peers — the last classic
// unstructured-search optimization in the paper's design space.
//
// Ultrapeers remember recent (query -> results) pairs and answer
// repeated queries without re-flooding. Like QRP and shortcuts, caching
// amortizes REPEATED demand, so the paper's workload splits it cleanly:
// the stable persistent head caches beautifully; the rare/transient tail
// (most queries, per exp_rare_queries) never repeats at the same cache
// and pays full price.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/sim/flood.hpp"
#include "src/sim/network.hpp"

namespace qcp2p::sim {

struct ResultCacheParams {
  /// Cache entries per peer (LRU).
  std::size_t capacity = 64;
  /// Flood TTL used on a cache miss.
  std::uint32_t flood_ttl = 3;
  /// DES-time TTL for cache entries; 0 disables age eviction. Without
  /// it a cached result can outlive every holder of the objects it
  /// names and keep serving phantom hits forever under churn.
  double max_age_s = 0.0;
};

struct CachedSearchResult {
  std::vector<std::uint64_t> results;
  std::uint64_t messages = 0;
  bool cache_hit = false;

  [[nodiscard]] bool success() const noexcept { return !results.empty(); }
};

/// Per-peer LRU of query->results; shared flood fallback.
class CachingSearchNetwork {
 public:
  CachingSearchNetwork(const Graph& graph, const PeerStore& store,
                       const ResultCacheParams& params = {});

  /// Checks the source's cache, then its neighbors' caches (1 message
  /// each, as piggybacked cache probes), then floods; successful results
  /// populate the source's cache.
  [[nodiscard]] CachedSearchResult search(NodeId source,
                                          std::span<const TermId> query);

  /// Warms `peer`'s cache externally (a replicated result push in the
  /// serving path). Follows insert() semantics: an existing entry is
  /// refreshed to most-recent position; empty result sets are not cached.
  void prime(NodeId peer, std::span<const TermId> query,
             std::vector<std::uint64_t> results);

  /// prime() plus holder registration: when any of `holders` later
  /// leaves (on_peer_leave), this entry is invalidated.
  void prime(NodeId peer, std::span<const TermId> query,
             std::vector<std::uint64_t> results,
             std::span<const NodeId> holders);

  /// Ranked twin of the holder-aware prime(): caches a CANONICAL
  /// ranking (finish_ranked order — descending score, ascending id on
  /// ties) under the query key together with the (k, min_score)
  /// admission bounds it was computed with. Ranked and set entries
  /// share the key space — priming either kind replaces the other.
  /// Invalidation is whole-entry: when a registered holder leaves, the
  /// ranking dies (truncating it could silently promote the wrong
  /// object into the k-th slot).
  void prime_ranked(NodeId peer, std::span<const TermId> query,
                    std::vector<ScoredMatch> ranked, std::uint32_t k,
                    float min_score, std::span<const NodeId> holders);

  // --- serving-path API ----------------------------------------------------
  // The serving world splits the cache interaction in two so query
  // shards can run in parallel: peek() is const (safe for concurrent
  // readers between mutations), and the LRU refresh / insert side
  // effects replay sequentially in global query order afterwards.

  /// Advances the cache's DES clock (monotone; smaller values ignored).
  /// Age eviction is lazy: expired entries die on their next touch.
  void advance_clock(double now_s) noexcept;
  /// Const lookup: the cached results, or nullptr on miss/expired entry.
  /// No LRU refresh, no eviction — safe to call concurrently as long as
  /// no mutating member runs in parallel.
  [[nodiscard]] const std::vector<std::uint64_t>* peek(
      NodeId peer, std::span<const TermId> query) const;
  /// peek() with the neighbor probes search() performs: checks `peer`'s
  /// own cache, then each neighbor's (one message per probe, counted in
  /// `probe_messages`). On a hit `hit_peer` names whose cache answered
  /// (== peer for a free local hit). Const like peek(): no LRU refresh,
  /// no eviction, safe for concurrent readers between mutations.
  [[nodiscard]] const std::vector<std::uint64_t>* peek_routed(
      NodeId peer, std::span<const TermId> query,
      std::uint64_t& probe_messages, NodeId& hit_peer) const;
  /// Const ranked lookup: the cached ranking iff the entry can serve the
  /// request — entry.k >= k and entry.min_score <= min_score (a wider
  /// ranking contains every answer a tighter request needs). The caller
  /// re-applies its own min_score and truncates to its k. Set entries
  /// (k == 0) and ranked entries never cross-serve.
  [[nodiscard]] const std::vector<ScoredMatch>* peek_ranked(
      NodeId peer, std::span<const TermId> query, std::uint32_t k,
      float min_score) const;
  /// peek_ranked() with peek_routed()'s neighbor probes and the same
  /// concurrency contract.
  [[nodiscard]] const std::vector<ScoredMatch>* peek_routed_ranked(
      NodeId peer, std::span<const TermId> query, std::uint32_t k,
      float min_score, std::uint64_t& probe_messages, NodeId& hit_peer) const;
  /// Sequential-replay half of peek(): refreshes the entry's LRU
  /// position, or erases it if it expired since insertion.
  void touch(NodeId peer, std::span<const TermId> query);
  /// Churn invalidation: drops every cache entry registered (via the
  /// holder-aware prime()) against `peer`. Conservative — an entry with
  /// several holders dies when the FIRST one leaves; the cost is a
  /// re-flood, never a phantom hit.
  void on_peer_leave(NodeId peer);

  [[nodiscard]] double hit_rate() const noexcept {
    return searches_ == 0 ? 0.0
                          : static_cast<double>(hits_) /
                                static_cast<double>(searches_);
  }
  [[nodiscard]] std::size_t cached_entries(NodeId peer) const {
    return caches_.at(peer).order.size();
  }

 private:
  struct QueryKey {
    std::uint64_t hash = 0;
    friend bool operator==(const QueryKey&, const QueryKey&) = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const QueryKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash);
    }
  };
  struct Entry {
    std::list<QueryKey>::iterator pos;
    std::vector<std::uint64_t> results;
    double inserted_at = 0.0;
    /// Ranked payload (k != 0): canonical ranking + the admission
    /// bounds it was computed with. `results` stays empty for ranked
    /// entries; set lookups skip them and vice versa.
    std::vector<ScoredMatch> ranked;
    std::uint32_t k = 0;
    float min_score = 0.0f;
  };
  struct PeerCache {
    std::list<QueryKey> order;  // front = most recent
    std::unordered_map<QueryKey, Entry, KeyHash> entries;
  };

  [[nodiscard]] static QueryKey key_from(std::span<const TermId> query,
                                         std::vector<TermId>& scratch);
  [[nodiscard]] QueryKey key_of(std::span<const TermId> query);
  [[nodiscard]] bool expired(const Entry& e) const noexcept {
    return params_.max_age_s > 0.0 && now_s_ - e.inserted_at > params_.max_age_s;
  }
  [[nodiscard]] const std::vector<std::uint64_t>* lookup(NodeId peer,
                                                         const QueryKey& key);
  void insert(NodeId peer, const QueryKey& key,
              std::vector<std::uint64_t> results);
  void insert_ranked(NodeId peer, const QueryKey& key,
                     std::vector<ScoredMatch> ranked, std::uint32_t k,
                     float min_score);
  void erase_entry(PeerCache& cache,
                   std::unordered_map<QueryKey, Entry, KeyHash>::iterator it);

  const Graph* graph_;
  const PeerStore* store_;
  ResultCacheParams params_;
  std::vector<PeerCache> caches_;
  FloodEngine engine_;
  /// key_of's sort/unique workspace (reused across queries).
  std::vector<TermId> key_scratch_;
  std::uint64_t searches_ = 0;
  std::uint64_t hits_ = 0;
  /// DES clock for age eviction (advance_clock()).
  double now_s_ = 0.0;
  /// holder peer -> entries registered by the holder-aware prime().
  /// Hints, not invariants: entries may already be gone (LRU/age
  /// eviction) or replaced by a newer same-key entry; on_peer_leave()
  /// erasing the newer one is just a conservative miss.
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, QueryKey>>>
      holder_index_;
};

}  // namespace qcp2p::sim
