#include "src/text/vocabulary.hpp"

#include <stdexcept>

namespace qcp2p::text {

TermId Vocabulary::intern(std::string_view term) {
  const auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<TermId>(terms_.size());
  auto [inserted, ok] = index_.emplace(std::string(term), id);
  (void)ok;
  terms_.push_back(&inserted->first);
  return id;
}

std::optional<TermId> Vocabulary::find(std::string_view term) const {
  const auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Vocabulary::spell(TermId id) const {
  if (id >= terms_.size()) throw std::out_of_range("Vocabulary::spell: bad id");
  return *terms_[id];
}

std::vector<TermId> Vocabulary::intern_all(
    const std::vector<std::string>& tokens) {
  std::vector<TermId> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) ids.push_back(intern(t));
  return ids;
}

}  // namespace qcp2p::text
