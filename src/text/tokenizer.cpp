#include "src/text/tokenizer.hpp"

#include <array>
#include <cctype>

namespace qcp2p::text {
namespace {

// Token-constituent bytes: ASCII alphanumerics and any UTF-8 continuation
// or lead byte (>= 0x80).
[[nodiscard]] constexpr bool is_token_byte(unsigned char c) noexcept {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z') || c >= 0x80;
}

constexpr std::array<std::string_view, 16> kMediaExtensions = {
    "mp3", "wma", "ogg", "aac", "m4a", "m4p", "flac", "wav",
    "avi", "mpg", "mpeg", "mp4", "wmv", "mov", "mkv", "pdf"};

}  // namespace

std::string to_lower(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char ch : input) {
    const auto c = static_cast<unsigned char>(ch);
    out.push_back(c < 0x80 ? static_cast<char>(std::tolower(c)) : ch);
  }
  return out;
}

bool is_media_extension(std::string_view token) noexcept {
  for (std::string_view ext : kMediaExtensions) {
    if (token == ext) return true;
  }
  return false;
}

bool is_numeric(std::string_view token) noexcept {
  if (token.empty()) return false;
  for (char ch : token) {
    const auto c = static_cast<unsigned char>(ch);
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::vector<std::string> tokenize(std::string_view input,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && !is_token_byte(static_cast<unsigned char>(input[i])))
      ++i;
    const std::size_t start = i;
    while (i < input.size() && is_token_byte(static_cast<unsigned char>(input[i])))
      ++i;
    if (i == start) continue;
    std::string token = to_lower(input.substr(start, i - start));
    if (token.size() < options.min_length) continue;
    if (options.drop_numeric && is_numeric(token)) continue;
    if (options.drop_extensions && is_media_extension(token)) continue;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

std::string sanitize_filename(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  bool last_was_space = true;  // trims leading spaces
  for (char ch : name) {
    const auto c = static_cast<unsigned char>(ch);
    const unsigned char lower =
        c < 0x80 ? static_cast<unsigned char>(std::tolower(c)) : c;
    const bool keep = (lower >= '0' && lower <= '9') ||
                      (lower >= 'a' && lower <= 'z') || lower == '.' ||
                      lower >= 0x80;
    if (keep) {
      out.push_back(static_cast<char>(lower));
      last_was_space = false;
    } else if (!last_was_space) {
      out.push_back(' ');
      last_was_space = true;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace qcp2p::text
