// String interning: maps terms <-> dense 32-bit ids.
//
// The crawls contain millions of object names built from ~1.2M unique
// terms; all downstream analysis (popularity counting, Jaccard, peer
// indexes) runs in term-id space so that sets become sorted vectors of
// uint32 rather than hash sets of strings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qcp2p::text {

using TermId = std::uint32_t;

class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id for `term`, interning it if new.
  TermId intern(std::string_view term);

  /// Id lookup without insertion.
  [[nodiscard]] std::optional<TermId> find(std::string_view term) const;

  /// Reverse lookup; id must have been returned by intern().
  [[nodiscard]] const std::string& spell(TermId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }
  [[nodiscard]] bool empty() const noexcept { return terms_.empty(); }

  /// Interns every token of a tokenized string, returning ids in order.
  std::vector<TermId> intern_all(const std::vector<std::string>& tokens);

 private:
  // Heterogeneous-lookup hash/eq so find(string_view) does not allocate.
  struct Hash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    [[nodiscard]] bool operator()(std::string_view a,
                                  std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::unordered_map<std::string, TermId, Hash, Eq> index_;
  std::vector<const std::string*> terms_;
};

}  // namespace qcp2p::text
