// Gnutella-protocol-style tokenization and filename sanitization.
//
// The paper (Section III.A) tokenizes object names "using the Gnutella
// protocol tokenization mechanism": names are split on non-alphanumeric
// separators and matched case-insensitively; Figure 2 additionally
// "sanitizes" names by removing capitalization and special characters
// (dashes etc.). We reproduce both operations here. Input is UTF-8; any
// byte >= 0x80 is treated as a letter byte (multi-byte characters stay
// inside one token), which matches how Gnutella servents compare UTF-8
// names bytewise.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qcp2p::text {

/// Options controlling tokenization.
struct TokenizerOptions {
  /// Minimum token length in bytes; Gnutella servents commonly ignore
  /// 1-character tokens when building their QRP keyword tables.
  std::size_t min_length = 2;
  /// Drop purely numeric tokens ("01", "128") which carry no content
  /// signal (track numbers, bitrates).
  bool drop_numeric = false;
  /// Drop file-extension tokens (mp3, wma, avi, ...) that would otherwise
  /// dominate the term popularity distribution.
  bool drop_extensions = true;
};

/// Splits a file name / query string into lowercase terms.
[[nodiscard]] std::vector<std::string> tokenize(
    std::string_view input, const TokenizerOptions& options = {});

/// Lowercases ASCII bytes in place semantics (returns a copy); multi-byte
/// UTF-8 sequences are passed through untouched.
[[nodiscard]] std::string to_lower(std::string_view input);

/// The paper's Figure 2 sanitization: lowercase + strip special
/// characters (anything not alphanumeric, not '.', not space becomes
/// nothing; runs of spaces collapse). "Aaron Neville - I Don't.mp3"
/// -> "aaron neville i dont.mp3".
[[nodiscard]] std::string sanitize_filename(std::string_view name);

/// True if the token is a known media/file extension.
[[nodiscard]] bool is_media_extension(std::string_view token) noexcept;

/// True if every byte of the token is an ASCII digit.
[[nodiscard]] bool is_numeric(std::string_view token) noexcept;

}  // namespace qcp2p::text
