#include "src/analysis/rare_queries.hpp"

#include <algorithm>

namespace qcp2p::analysis {

GlobalResultIndex::GlobalResultIndex(const trace::CrawlSnapshot& snapshot) {
  // Pass 1: replica counts per unique object.
  for (std::size_t p = 0; p < snapshot.num_peers(); ++p) {
    for (trace::ObjectKey key : snapshot.peer_objects(p)) {
      ++object_replicas_[key.bits];
    }
  }
  // Pass 2: term postings over unique objects.
  for (const auto& [bits, replicas] : object_replicas_) {
    const trace::ObjectKey key{bits};
    for (trace::TermId t : snapshot.object_terms(key)) {
      term_objects_[t].push_back(bits);
    }
  }
  for (auto& [term, objects] : term_objects_) {
    std::sort(objects.begin(), objects.end());
    objects.erase(std::unique(objects.begin(), objects.end()), objects.end());
  }
}

std::uint64_t GlobalResultIndex::result_count(
    std::span<const trace::TermId> query) const {
  if (query.empty()) return 0;

  // Gather postings; a missing term means zero conjunctive results.
  std::vector<const std::vector<std::uint64_t>*> postings;
  postings.reserve(query.size());
  for (trace::TermId t : query) {
    const auto it = term_objects_.find(t);
    if (it == term_objects_.end()) return 0;
    postings.push_back(&it->second);
  }
  // Intersect starting from the shortest posting list.
  std::sort(postings.begin(), postings.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });

  std::uint64_t results = 0;
  for (std::uint64_t object : *postings.front()) {
    bool in_all = true;
    for (std::size_t i = 1; i < postings.size() && in_all; ++i) {
      in_all = std::binary_search(postings[i]->begin(), postings[i]->end(),
                                  object);
    }
    if (in_all) results += object_replicas_.at(object);
  }
  return results;
}

RareQueryStats rare_query_stats(const GlobalResultIndex& index,
                                std::span<const trace::Query> queries,
                                std::uint64_t cutoff,
                                std::size_t sample_every) {
  RareQueryStats stats;
  if (sample_every == 0) sample_every = 1;
  std::vector<double> counts;
  double sum = 0.0;
  for (std::size_t i = 0; i < queries.size(); i += sample_every) {
    const std::uint64_t results = index.result_count(queries[i].terms);
    ++stats.queries;
    stats.zero_results += (results == 0);
    stats.rare += (results < cutoff);
    counts.push_back(static_cast<double>(results));
    sum += static_cast<double>(results);
  }
  if (!counts.empty()) {
    stats.mean_results = sum / static_cast<double>(counts.size());
    std::nth_element(counts.begin(), counts.begin() + static_cast<std::ptrdiff_t>(counts.size() / 2),
                     counts.end());
    stats.median_results = counts[counts.size() / 2];
  }
  return stats;
}

double analytical_flood_success(std::uint64_t copies, std::uint64_t reached,
                                std::uint64_t n) noexcept {
  if (n == 0 || copies == 0) return 0.0;
  if (copies >= n || reached >= n) return 1.0;
  // P(miss) = prod_{i=0}^{reached-1} (n - copies - i) / (n - i).
  double miss = 1.0;
  for (std::uint64_t i = 0; i < reached; ++i) {
    const double numer = static_cast<double>(n - copies - i);
    if (numer <= 0.0) return 1.0;
    miss *= numer / static_cast<double>(n - i);
  }
  return 1.0 - miss;
}

}  // namespace qcp2p::analysis
