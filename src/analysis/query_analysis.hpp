// Interval-based analysis of query workloads: term popularity per
// evaluation interval, transient-popularity detection (Fig 5), stability
// of the popular set (Fig 6), and the query-vs-file-term disconnect
// (Fig 7). Mirrors Section IV of the paper:
//
//   * a training prefix (10% of queries) establishes each term's
//     historical occurrence rate;
//   * at each evaluation interval, a term is *transiently popular* when
//     its occurrence count deviates significantly from its historical
//     average (we use a Poisson-style z-score plus a multiplicative
//     ratio, both configurable);
//   * the *popular* set Q*_t is the top-k terms of the interval;
//   * Q**_t = Q*_t intersected with Q*_{t-1} (persistently popular), and
//     Fig 6 plots Jaccard(Q*_t, Q**_t);
//   * Fig 7 plots Jaccard(Q*_t, F*) against the popular file terms F*.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/trace/query_trace.hpp"

namespace qcp2p::analysis {

using trace::Query;
using trace::TermId;

/// How the per-interval popular set Q*_t is chosen.
struct PopularPolicy {
  /// Keep the top_k most frequent terms of the interval...
  std::size_t top_k = 200;
  /// ...that occur at least min_count times.
  std::uint32_t min_count = 2;
};

/// How transient popularity is detected.
struct TransientPolicy {
  /// Flag a term when interval_count > history_mean + z * sqrt(mean)
  /// (Poisson deviation)...
  double z_score = 6.0;
  /// ...and interval_count >= ratio * history_mean...
  double min_ratio = 8.0;
  /// ...and interval_count is at least this large (kills one-off noise).
  std::uint32_t min_count = 10;
};

/// Bins a query stream into fixed evaluation intervals and answers the
/// paper's Section IV questions about it.
class QueryTermAnalyzer {
 public:
  /// @param interval_s      evaluation interval length in seconds.
  /// @param train_fraction  leading fraction of queries used only to
  ///                        establish historical rates (paper: 10%).
  QueryTermAnalyzer(std::span<const Query> queries, double duration_s,
                    double interval_s, double train_fraction = 0.10);

  [[nodiscard]] std::size_t num_intervals() const noexcept {
    return intervals_.size();
  }
  /// First interval at or after the end of the training prefix.
  [[nodiscard]] std::size_t first_eval_interval() const noexcept {
    return first_eval_;
  }
  [[nodiscard]] double interval_s() const noexcept { return interval_s_; }

  /// Term -> count within interval t.
  [[nodiscard]] const std::unordered_map<TermId, std::uint32_t>&
  interval_counts(std::size_t t) const {
    return intervals_.at(t);
  }

  /// Q*_t under the given policy (unsorted set).
  [[nodiscard]] std::unordered_set<TermId> popular_terms(
      std::size_t t, const PopularPolicy& policy) const;

  /// Terms transiently popular in interval t. History = training counts
  /// plus all full intervals before t (cumulative, as in the paper).
  [[nodiscard]] std::vector<TermId> transient_terms(
      std::size_t t, const TransientPolicy& policy) const;

  /// Fig 5 series: number of transient terms per evaluation interval.
  [[nodiscard]] std::vector<std::uint32_t> transient_count_series(
      const TransientPolicy& policy) const;

  /// Fig 6 series: Jaccard(Q*_t, Q*_t ∩ Q*_{t-1}) for each evaluation
  /// interval t >= first_eval_interval() + 1.
  [[nodiscard]] std::vector<double> stability_series(
      const PopularPolicy& policy) const;

  /// Fig 7 series: Jaccard(Q*_t, file_popular) per evaluation interval.
  [[nodiscard]] std::vector<double> disconnect_series(
      std::span<const TermId> file_popular, const PopularPolicy& policy) const;

  /// Variant of Fig 7 using ALL query terms of the interval (Q_t).
  [[nodiscard]] std::vector<double> disconnect_series_all_terms(
      std::span<const TermId> file_popular) const;

  /// Rank-level stability: Kendall tau-b between consecutive intervals'
  /// counts, computed over the union of the two popular sets. A finer
  /// companion to Fig 6's set-level Jaccard — the set can be stable while
  /// the ranking inside it churns.
  [[nodiscard]] std::vector<double> rank_correlation_series(
      const PopularPolicy& policy) const;

  /// Query arrivals per interval (all intervals, including training).
  [[nodiscard]] std::vector<double> volume_series() const;

 private:
  /// Historical per-interval rate of a term before interval t.
  [[nodiscard]] double history_rate(TermId term, std::size_t t) const;

  double interval_s_;
  std::size_t first_eval_ = 0;
  std::vector<std::unordered_map<TermId, std::uint32_t>> intervals_;
  // Cumulative counts over intervals [0, t): prefix_counts_[t].
  // Stored sparsely: per-term vector of (interval, running total).
  std::unordered_map<TermId, std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      cumulative_;
};

/// Pearson autocorrelation of a series at a given lag; used to confirm
/// the diurnal (24-hour) periodicity of query arrivals the generator
/// models (a peak at lag = 24h / interval).
[[nodiscard]] double autocorrelation(std::span<const double> series,
                                     std::size_t lag);

}  // namespace qcp2p::analysis
