#include "src/analysis/query_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/jaccard.hpp"

namespace qcp2p::analysis {

QueryTermAnalyzer::QueryTermAnalyzer(std::span<const Query> queries,
                                     double duration_s, double interval_s,
                                     double train_fraction)
    : interval_s_(interval_s) {
  if (interval_s <= 0.0) {
    throw std::invalid_argument("QueryTermAnalyzer: interval_s must be > 0");
  }
  if (train_fraction < 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument(
        "QueryTermAnalyzer: train_fraction must be in [0, 1)");
  }
  const auto num_intervals = static_cast<std::size_t>(
      std::ceil(duration_s / interval_s));
  intervals_.resize(std::max<std::size_t>(1, num_intervals));

  for (const Query& q : queries) {
    auto t = static_cast<std::size_t>(q.time_s / interval_s);
    if (t >= intervals_.size()) t = intervals_.size() - 1;
    for (TermId term : q.terms) ++intervals_[t][term];
  }

  first_eval_ = static_cast<std::size_t>(
      std::ceil(duration_s * train_fraction / interval_s));
  first_eval_ = std::min(first_eval_, intervals_.size());

  // Sparse cumulative counts: for each term, running totals at the
  // intervals where it occurred.
  for (std::uint32_t t = 0; t < intervals_.size(); ++t) {
    for (const auto& [term, count] : intervals_[t]) {
      auto& entries = cumulative_[term];
      const std::uint32_t prev = entries.empty() ? 0 : entries.back().second;
      entries.emplace_back(t, prev + count);
    }
  }
}

double QueryTermAnalyzer::history_rate(TermId term, std::size_t t) const {
  if (t == 0) return 0.0;
  const auto it = cumulative_.find(term);
  if (it == cumulative_.end()) return 0.0;
  const auto& entries = it->second;
  // Running total over intervals [0, t): last entry with interval < t.
  const auto pos = std::lower_bound(
      entries.begin(), entries.end(), t,
      [](const auto& e, std::size_t value) { return e.first < value; });
  const std::uint32_t total = pos == entries.begin() ? 0 : std::prev(pos)->second;
  return static_cast<double>(total) / static_cast<double>(t);
}

std::unordered_set<TermId> QueryTermAnalyzer::popular_terms(
    std::size_t t, const PopularPolicy& policy) const {
  const auto& counts = intervals_.at(t);
  std::vector<std::pair<std::uint32_t, TermId>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [term, count] : counts) {
    if (count >= policy.min_count) ranked.emplace_back(count, term);
  }
  const std::size_t k = std::min(policy.top_k, ranked.size());
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(k),
                    ranked.end(), std::greater<>());
  std::unordered_set<TermId> popular;
  popular.reserve(k);
  for (std::size_t i = 0; i < k; ++i) popular.insert(ranked[i].second);
  return popular;
}

std::vector<TermId> QueryTermAnalyzer::transient_terms(
    std::size_t t, const TransientPolicy& policy) const {
  std::vector<TermId> out;
  for (const auto& [term, count] : intervals_.at(t)) {
    if (count < policy.min_count) continue;
    const double mean = history_rate(term, t);
    const double poisson_bound =
        mean + policy.z_score * std::sqrt(std::max(mean, 1.0));
    const double ratio_bound = policy.min_ratio * std::max(mean, 0.5);
    if (static_cast<double>(count) > poisson_bound &&
        static_cast<double>(count) >= ratio_bound) {
      out.push_back(term);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> QueryTermAnalyzer::transient_count_series(
    const TransientPolicy& policy) const {
  std::vector<std::uint32_t> series;
  series.reserve(intervals_.size() - first_eval_);
  for (std::size_t t = first_eval_; t < intervals_.size(); ++t) {
    series.push_back(
        static_cast<std::uint32_t>(transient_terms(t, policy).size()));
  }
  return series;
}

std::vector<double> QueryTermAnalyzer::stability_series(
    const PopularPolicy& policy) const {
  std::vector<double> series;
  if (intervals_.size() < 2) return series;
  std::unordered_set<TermId> prev = popular_terms(first_eval_, policy);
  for (std::size_t t = first_eval_ + 1; t < intervals_.size(); ++t) {
    std::unordered_set<TermId> cur = popular_terms(t, policy);
    // Q**_t = Q*_t ∩ Q*_{t-1}; Jaccard(Q*_t, Q**_t) = |Q**_t| / |Q*_t|.
    const std::size_t inter = util::intersection_size(cur, prev);
    series.push_back(cur.empty()
                         ? 1.0
                         : static_cast<double>(inter) /
                               static_cast<double>(cur.size()));
    prev = std::move(cur);
  }
  return series;
}

std::vector<double> QueryTermAnalyzer::rank_correlation_series(
    const PopularPolicy& policy) const {
  std::vector<double> series;
  if (intervals_.size() < 2) return series;

  auto count_in = [this](std::size_t t, TermId term) -> std::uint32_t {
    const auto& counts = intervals_[t];
    const auto it = counts.find(term);
    return it == counts.end() ? 0 : it->second;
  };

  std::unordered_set<TermId> prev = popular_terms(first_eval_, policy);
  for (std::size_t t = first_eval_ + 1; t < intervals_.size(); ++t) {
    std::unordered_set<TermId> cur = popular_terms(t, policy);
    std::vector<TermId> universe(prev.begin(), prev.end());
    for (TermId term : cur) {
      if (!prev.count(term)) universe.push_back(term);
    }
    // Kendall tau-b over (count_{t-1}, count_t) pairs; O(u^2) on the
    // small popular-set union.
    std::int64_t concordant = 0, discordant = 0;
    std::int64_t ties_a = 0, ties_b = 0;
    for (std::size_t i = 0; i < universe.size(); ++i) {
      for (std::size_t j = i + 1; j < universe.size(); ++j) {
        const auto a1 = count_in(t - 1, universe[i]);
        const auto a2 = count_in(t - 1, universe[j]);
        const auto b1 = count_in(t, universe[i]);
        const auto b2 = count_in(t, universe[j]);
        const int da = a1 < a2 ? -1 : (a1 > a2 ? 1 : 0);
        const int db = b1 < b2 ? -1 : (b1 > b2 ? 1 : 0);
        if (da == 0 && db == 0) {
          ++ties_a;
          ++ties_b;
        } else if (da == 0) {
          ++ties_a;
        } else if (db == 0) {
          ++ties_b;
        } else if (da == db) {
          ++concordant;
        } else {
          ++discordant;
        }
      }
    }
    const double n0 = static_cast<double>(universe.size()) *
                      (static_cast<double>(universe.size()) - 1.0) / 2.0;
    const double denom = std::sqrt((n0 - static_cast<double>(ties_a)) *
                                   (n0 - static_cast<double>(ties_b)));
    series.push_back(denom > 0.0
                         ? static_cast<double>(concordant - discordant) / denom
                         : 1.0);
    prev = std::move(cur);
  }
  return series;
}

std::vector<double> QueryTermAnalyzer::disconnect_series(
    std::span<const TermId> file_popular, const PopularPolicy& policy) const {
  const std::unordered_set<TermId> file_set(file_popular.begin(),
                                            file_popular.end());
  std::vector<double> series;
  series.reserve(intervals_.size() - first_eval_);
  for (std::size_t t = first_eval_; t < intervals_.size(); ++t) {
    series.push_back(util::jaccard(popular_terms(t, policy), file_set));
  }
  return series;
}

std::vector<double> QueryTermAnalyzer::disconnect_series_all_terms(
    std::span<const TermId> file_popular) const {
  const std::unordered_set<TermId> file_set(file_popular.begin(),
                                            file_popular.end());
  std::vector<double> series;
  series.reserve(intervals_.size() - first_eval_);
  for (std::size_t t = first_eval_; t < intervals_.size(); ++t) {
    std::unordered_set<TermId> all;
    all.reserve(intervals_[t].size());
    for (const auto& [term, count] : intervals_[t]) all.insert(term);
    series.push_back(util::jaccard(all, file_set));
  }
  return series;
}

std::vector<double> QueryTermAnalyzer::volume_series() const {
  std::vector<double> series;
  series.reserve(intervals_.size());
  for (const auto& counts : intervals_) {
    double total = 0.0;
    for (const auto& [term, count] : counts) total += count;
    series.push_back(total);
  }
  return series;
}

double autocorrelation(std::span<const double> series, std::size_t lag) {
  if (lag >= series.size()) return 0.0;
  const std::size_t n = series.size();
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double x : series) var += (x - mean) * (x - mean);
  if (var <= 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    cov += (series[i] - mean) * (series[i + lag] - mean);
  }
  return cov / var;
}

}  // namespace qcp2p::analysis
