#include "src/analysis/replication.hpp"

#include <algorithm>

namespace qcp2p::analysis {

ReplicationSummary summarize_replication(std::span<const std::uint64_t> counts,
                                         std::uint64_t population) {
  ReplicationSummary s;
  s.unique_items = counts.size();
  if (counts.empty()) return s;

  s.milli_threshold = std::max<std::uint64_t>(1, population / 1000);
  std::uint64_t singletons = 0, under = 0, over20 = 0, max = 0;
  for (std::uint64_t c : counts) {
    s.total_instances += c;
    singletons += (c == 1);
    under += (c <= s.milli_threshold);
    over20 += (c >= 20);
    max = std::max(max, c);
  }
  const double n = static_cast<double>(counts.size());
  s.mean_replicas = static_cast<double>(s.total_instances) / n;
  s.max_replicas = static_cast<double>(max);
  s.singleton_fraction = static_cast<double>(singletons) / n;
  s.fraction_under_milli = static_cast<double>(under) / n;
  s.fraction_20_or_more = static_cast<double>(over20) / n;

  // Fit the Zipf exponent on the head (top 1% of ranks, at least 100),
  // where the power law lives; the singleton plateau is excluded.
  const auto curve = replication_rank_curve(counts);
  const std::size_t head =
      std::max<std::size_t>(100, counts.size() / 100);
  s.zipf = util::fit_zipf(curve, head);
  return s;
}

std::vector<util::CurvePoint> replication_rank_curve(
    std::span<const std::uint64_t> counts) {
  return util::rank_frequency(counts);
}

void NameReplicaCounter::add(std::uint32_t peer, std::string_view name) {
  auto [it, fresh] = counts_.try_emplace(std::string(name));
  Entry& e = it->second;
  if (fresh || e.last_peer != peer + 1) {
    ++e.count;
    e.last_peer = peer + 1;
  }
}

std::vector<std::uint64_t> NameReplicaCounter::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(counts_.size());
  for (const auto& [name, e] : counts_) out.push_back(e.count);
  return out;
}

}  // namespace qcp2p::analysis
