// Replica-distribution analysis (Figs 1-4 and the in-text statistics):
// given per-item replica counts (how many peers hold each unique object /
// term / annotation value), compute the summary numbers the paper reports
// and the rank plots it draws.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/stats.hpp"

namespace qcp2p::analysis {

struct ReplicationSummary {
  std::uint64_t unique_items = 0;
  std::uint64_t total_instances = 0;  // sum of counts
  double mean_replicas = 0.0;
  double max_replicas = 0.0;
  /// Fraction of unique items held by exactly one peer.
  double singleton_fraction = 0.0;
  /// Fraction of unique items held by <= threshold peers, where the
  /// threshold is 0.1% of the population (the paper's headline cut).
  double fraction_under_milli = 0.0;
  std::uint64_t milli_threshold = 0;  // the "0.1% of peers" peer count
  /// Fraction of unique items on >= 20 peers (Loo et al.'s rare cutoff).
  double fraction_20_or_more = 0.0;
  /// Zipf exponent fitted to the head of the rank-frequency curve.
  util::ZipfFit zipf;
};

/// @param population  number of peers/clients in the system (defines the
///                    0.1% threshold, rounded down but at least 1).
[[nodiscard]] ReplicationSummary summarize_replication(
    std::span<const std::uint64_t> counts, std::uint64_t population);

/// Rank plot (log-log axes): x = item rank by replica count, y = count.
[[nodiscard]] std::vector<util::CurvePoint> replication_rank_curve(
    std::span<const std::uint64_t> counts);

/// String-pipeline replica counter: feed (peer, name) pairs exactly as a
/// crawler would observe them; duplicate names within one peer count once.
/// Peers must be fed in nondecreasing peer order.
class NameReplicaCounter {
 public:
  void add(std::uint32_t peer, std::string_view name);

  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::size_t unique_names() const noexcept {
    return counts_.size();
  }

 private:
  struct Entry {
    std::uint64_t count = 0;
    std::uint32_t last_peer = 0;  // peer id + 1; 0 = none
  };
  std::unordered_map<std::string, Entry> counts_;
};

}  // namespace qcp2p::analysis
