// Global result-count analysis: how many results would a query get if it
// reached the WHOLE network? Loo et al. (IPTPS'04) call a query "rare"
// when it returns fewer than 20 results; the paper's Section VI argues
// that under the measured distribution almost every query is rare (fewer
// than 4% of objects sit on >= 20 peers), which breaks hybrid search's
// premise that common queries are satisfied by the flood phase.
//
// Also provides the analytical uniform-replication flood-success model
// the paper compares against ("a random distribution model ... would
// have predicted a success rate of 62%").
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/trace/gnutella.hpp"
#include "src/trace/query_trace.hpp"

namespace qcp2p::analysis {

/// Inverted index over an entire crawl: term -> number of object
/// *replicas* (peer-held instances) whose annotations contain the term.
/// Result counts for single-term queries are exact; multi-term
/// (conjunctive) counts are computed by intersecting per-term object
/// sets and summing replica counts.
class GlobalResultIndex {
 public:
  explicit GlobalResultIndex(const trace::CrawlSnapshot& snapshot);

  /// Number of results (matching replicas network-wide) for a
  /// conjunctive query.
  [[nodiscard]] std::uint64_t result_count(
      std::span<const trace::TermId> query) const;

  [[nodiscard]] std::size_t indexed_terms() const noexcept {
    return term_objects_.size();
  }

 private:
  // term -> sorted unique object keys containing it.
  std::unordered_map<trace::TermId, std::vector<std::uint64_t>> term_objects_;
  // object key -> replica count.
  std::unordered_map<std::uint64_t, std::uint32_t> object_replicas_;
};

struct RareQueryStats {
  std::uint64_t queries = 0;
  std::uint64_t zero_results = 0;        // nothing matches anywhere
  std::uint64_t rare = 0;                // < cutoff results (incl. zero)
  double mean_results = 0.0;
  double median_results = 0.0;

  [[nodiscard]] double rare_fraction() const noexcept {
    return queries == 0 ? 0.0
                        : static_cast<double>(rare) /
                              static_cast<double>(queries);
  }
  [[nodiscard]] double zero_fraction() const noexcept {
    return queries == 0 ? 0.0
                        : static_cast<double>(zero_results) /
                              static_cast<double>(queries);
  }
};

/// Evaluates a query workload against the whole-network index.
/// @param cutoff  Loo et al.'s rare-query threshold (default 20).
/// @param sample_every  evaluate every k-th query (1 = all).
[[nodiscard]] RareQueryStats rare_query_stats(
    const GlobalResultIndex& index, std::span<const trace::Query> queries,
    std::uint64_t cutoff = 20, std::size_t sample_every = 1);

/// Exact probability that a TTL-limited flood reaching `reached` peers
/// (uniformly random, without the source) sees at least one of `copies`
/// uniformly placed replicas in an `n`-peer network: the model prior
/// analyses used, which the paper shows overestimates real performance.
[[nodiscard]] double analytical_flood_success(std::uint64_t copies,
                                              std::uint64_t reached,
                                              std::uint64_t n) noexcept;

}  // namespace qcp2p::analysis
