// Topology ablation of Fig 8 (DESIGN.md section 5): does the paper's
// conclusion depend on the two-tier ultrapeer overlay? Run the TTL-3
// operating point on three topologies — modern two-tier Gnutella, a flat
// random-regular graph (2000-era Gnutella), and a preferential-attachment
// graph — and check that the Zipf-vs-uniform gap survives everywhere.
#include "bench/bench_common.hpp"

#include "src/overlay/topology.hpp"
#include "src/sim/flood.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

struct Topology {
  std::string name;
  overlay::TwoTierTopology topo{overlay::Graph(0), {}};
};

double success(const Topology& t, const sim::Placement& placement,
               std::uint32_t ttl, std::size_t trials, std::uint64_t seed) {
  sim::FloodEngine engine(t.topo.graph);
  util::Rng rng(seed);
  std::size_t ok = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto src =
        static_cast<NodeId>(rng.bounded(t.topo.graph.num_nodes()));
    const auto obj = rng.bounded(placement.num_objects());
    ok += engine.reaches_any(src, ttl, placement.holders[obj],
                             &t.topo.is_ultrapeer);
  }
  return static_cast<double>(ok) / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 1.0);
  const auto nodes = cli.get_uint("nodes", 20'000);
  const auto trials = cli.get_uint("trials", 800);
  const auto ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 3));
  bench::print_header(
      "exp_topology_ablation", env,
      "Fig 8's Zipf-vs-uniform gap across overlay topologies");

  util::Rng rng(env.seed);
  std::vector<Topology> topologies;
  {
    Topology t;
    t.name = "two-tier gnutella";
    overlay::TwoTierParams tp;
    tp.num_nodes = nodes;
    t.topo = overlay::gnutella_two_tier(tp, rng);
    topologies.push_back(std::move(t));
  }
  {
    Topology t;
    t.name = "flat random d=9";
    t.topo.graph = overlay::random_regular(nodes, 9, rng);
    t.topo.is_ultrapeer.assign(nodes, true);
    topologies.push_back(std::move(t));
  }
  {
    Topology t;
    t.name = "barabasi-albert m=5";
    t.topo.graph = overlay::barabasi_albert(nodes, 5, rng);
    t.topo.is_ultrapeer.assign(nodes, true);
    topologies.push_back(std::move(t));
  }

  bench::BenchEnv crawl_env = env;
  crawl_env.scale = cli.get_double("crawl-scale", 0.05);
  const trace::ContentModel model(crawl_env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, crawl_env.crawl_params());
  util::Rng prng(env.seed + 1);
  const sim::Placement zipf = sim::place_by_counts(
      sim::sample_replica_counts(crawl.object_replica_counts(), 2'000, prng),
      nodes, prng);
  const sim::Placement uni40 = sim::place_uniform(500, 40, nodes, prng);

  util::Table t({"topology", "mean degree", "reach@TTL", "uniform 0.1%",
                 "zipf", "gap (x)"});
  for (const Topology& topo : topologies) {
    util::Rng rrng(env.seed + 5);
    sim::FloodEngine engine(topo.topo.graph);
    util::RunningStats coverage;
    for (int i = 0; i < 100; ++i) {
      const auto src = static_cast<NodeId>(rrng.bounded(nodes));
      coverage.add(engine.run(src, ttl, &topo.topo.is_ultrapeer)
                       .coverage(nodes));
    }
    const double u = success(topo, uni40, ttl, trials, env.seed + 6);
    const double z = success(topo, zipf, ttl, trials, env.seed + 7);
    t.add_row();
    t.cell(topo.name)
        .cell(topo.topo.graph.mean_degree(), 1)
        .percent(coverage.mean(), 2)
        .percent(u, 1)
        .percent(z, 1)
        .cell(z > 0 ? u / z : 0.0, 1);
  }
  bench::emit(t, env,
              "TTL-" + std::to_string(ttl) +
                  " flood success: the Zipf penalty is topology-independent");
  return 0;
}
