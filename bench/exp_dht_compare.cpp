// Structured-substrate comparison: Chord's finger routing vs Pastry's
// prefix routing across ring sizes. The paper's Section V argument
// (hybrid flooding loses to "a DHT") is substrate-agnostic; this bench
// shows both DHTs route in a handful of hops at 40k nodes, i.e. the
// conclusion does not hinge on the choice of Chord in exp_hybrid_vs_dht.
#include "bench/bench_common.hpp"

#include <cmath>

#include "src/sim/dht.hpp"
#include "src/sim/pastry.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 1.0);
  const auto trials = cli.get_uint("trials", 2'000);
  bench::print_header("exp_dht_compare", env,
                      "Chord (finger) vs Pastry (prefix, b=4) routing cost");

  util::Table t({"nodes", "chord mean hops", "chord p99", "pastry mean hops",
                 "pastry p99", "log2(N)"});
  for (const std::size_t n : {1'000ULL, 10'000ULL, 40'000ULL, 100'000ULL}) {
    const sim::ChordDht chord(n, env.seed);
    const sim::PastryDht pastry(n, env.seed);
    util::Rng rng(env.seed + 2);
    std::vector<double> chord_hops, pastry_hops;
    chord_hops.reserve(trials);
    pastry_hops.reserve(trials);
    for (std::uint64_t i = 0; i < trials; ++i) {
      const std::uint64_t key = rng();
      const auto from = static_cast<NodeId>(rng.bounded(n));
      chord_hops.push_back(static_cast<double>(chord.lookup(key, from).hops));
      pastry_hops.push_back(
          static_cast<double>(pastry.lookup(key, from).hops));
    }
    util::RunningStats cs, ps;
    for (double h : chord_hops) cs.add(h);
    for (double h : pastry_hops) ps.add(h);
    t.add_row();
    t.cell(static_cast<std::uint64_t>(n))
        .cell(cs.mean(), 2)
        .cell(util::quantile(chord_hops, 0.99), 1)
        .cell(ps.mean(), 2)
        .cell(util::quantile(pastry_hops, 0.99), 1)
        .cell(std::log2(static_cast<double>(n)), 1);
  }
  bench::emit(t, env, "Routing hops vs ring size (both O(log N))");
  return 0;
}
