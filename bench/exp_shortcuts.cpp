// Interest-based shortcuts under the paper's workload shapes.
//
// Shortcut overlays (semantic/interest clustering, as in the related
// work the paper cites) amortize floods across REPEATED interests. The
// paper's measured workload has two properties that bound their value:
// a stable persistent head (repetition: shortcuts help) and a constant
// churn of rare/transient terms over singleton content (no repetition:
// every query pays the full flood again).
#include "bench/bench_common.hpp"

#include "src/overlay/topology.hpp"
#include "src/sim/shortcuts.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 400);
  bench::print_header(
      "exp_shortcuts", env,
      "Interest shortcuts: amortize repeated interests, useless against "
      "the rare/transient tail");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);
  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);

  util::Rng wrng(env.seed + 2);
  auto object_term = [&]() -> sim::TermId {
    for (;;) {
      const auto peer = static_cast<NodeId>(wrng.bounded(nodes));
      if (store.objects(peer).empty()) continue;
      const auto& obj =
          store.objects(peer)[wrng.bounded(store.objects(peer).size())];
      if (!obj.terms.empty()) return obj.terms[wrng.bounded(obj.terms.size())];
    }
  };
  // Rare-end variant: an object's tail-most (highest-id) term, i.e. the
  // idiosyncratic word only that object carries.
  auto rare_term = [&]() -> sim::TermId {
    for (;;) {
      const auto peer = static_cast<NodeId>(wrng.bounded(nodes));
      if (store.objects(peer).empty()) continue;
      const auto& obj =
          store.objects(peer)[wrng.bounded(store.objects(peer).size())];
      if (!obj.terms.empty() &&
          obj.terms.back() >= model.core_lexicon_size()) {
        return obj.terms.back();  // genuine tail-lexicon word
      }
    }
  };

  // A fixed population of requesters (shortcut state is per peer, so
  // repetition only pays within a requester's own query stream).
  std::vector<NodeId> requesters;
  for (int i = 0; i < 25; ++i) {
    requesters.push_back(static_cast<NodeId>(wrng.bounded(nodes)));
  }
  // Workload A: each requester cycles a personal 5-term interest set.
  // Workload B: every query is a fresh term (pure tail churn).
  std::vector<std::vector<sim::TermId>> interests(requesters.size());
  for (auto& pool : interests) {
    for (int i = 0; i < 5; ++i) pool.push_back(object_term());
  }

  struct Row {
    const char* name = "";
    std::size_t ok = 0;
    util::RunningStats msgs;
    double hit_rate = 0.0;
  };
  auto run = [&](bool repeated) {
    sim::ShortcutParams sp;
    sp.fallback_ttl = 3;
    sim::ShortcutOverlay overlay(graph, store, sp);
    Row row;
    row.name = repeated ? "repeated interests (head)" : "fresh rare terms (tail)";
    util::Rng prng(env.seed + 5);
    for (std::uint64_t q = 0; q < num_queries; ++q) {
      const std::size_t who = prng.bounded(requesters.size());
      const sim::TermId term =
          repeated ? interests[who][prng.bounded(interests[who].size())]
                   : rare_term();
      const auto r = overlay.search(requesters[who],
                                    std::vector<sim::TermId>{term});
      row.ok += r.success();
      row.msgs.add(static_cast<double>(r.total_messages()));
    }
    row.hit_rate = overlay.shortcut_hit_rate();
    return row;
  };

  util::Table t({"workload", "success", "msgs/query", "shortcut hit rate"});
  for (const Row& row : {run(true), run(false)}) {
    t.add_row();
    t.cell(row.name)
        .percent(static_cast<double>(row.ok) /
                     static_cast<double>(num_queries),
                 1)
        .cell(row.msgs.mean(), 0)
        .percent(row.hit_rate, 1);
  }
  bench::emit(t, env,
              "Shortcuts pay off only where interests repeat — the measured "
              "workload's tail gets no help");
  return 0;
}
