// Figure 1: "Number of Gnutella clients with object" (Apr 2007 crawl).
//
// Regenerates the rank plot and the in-text statistics: 12.1M objects,
// 8.1M unique, 70.5% on a single peer, 99.5% on <= 0.1% of peers. The
// names are realized and counted through the same string pipeline the
// real crawler used.
#include "bench/bench_common.hpp"

#include "src/analysis/replication.hpp"
#include "src/util/histogram.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli);
  bench::print_header(
      "fig1_object_replication", env,
      "Fig 1 + Sec III.A: 37,572 peers; 12.1M objects, 8.1M unique; "
      "70.5% singleton; 99.5% on <=37 peers (0.1%)");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot snap =
      generate_gnutella_crawl(model, env.crawl_params());

  // String pipeline: exact-name identity, as received from the network.
  analysis::NameReplicaCounter names;
  for (std::uint32_t p = 0; p < snap.num_peers(); ++p) {
    for (trace::ObjectKey k : snap.peer_objects(p)) {
      names.add(p, snap.object_name(k));
    }
  }
  const auto counts = names.counts();
  const auto s = analysis::summarize_replication(counts, snap.num_peers());

  util::Table t({"metric", "paper (full scale)", "measured"});
  t.add_row();
  t.cell("peers crawled").cell(std::uint64_t{37'572}).cell(
      static_cast<std::uint64_t>(snap.num_peers()));
  t.add_row();
  t.cell("objects (total)").cell("12.1M").cell(snap.total_objects());
  t.add_row();
  t.cell("unique objects").cell("8.1M").cell(s.unique_items);
  t.add_row();
  t.cell("mean replicas").cell("~1.5").cell(s.mean_replicas, 2);
  t.add_row();
  t.cell("singleton objects").cell("70.5%").percent(s.singleton_fraction);
  t.add_row();
  t.cell("objects on <= 37 peers").cell("99.5%").percent(
      util::fraction_at_or_below(counts, 37));
  t.add_row();
  t.cell("objects on >= 20 peers").cell("< 4%").percent(s.fraction_20_or_more);
  t.add_row();
  t.cell("zipf exponent (head fit)").cell("zipf-like").cell(s.zipf.exponent, 2);
  bench::emit(t, env, "Fig 1 — object replication (exact names)");

  // Rank-plot sample (log-spaced ranks) for plotting.
  const auto curve = analysis::replication_rank_curve(counts);
  util::Table plot({"rank", "clients_with_object"});
  for (double r = 1.0; r < static_cast<double>(curve.size()); r *= 4.0) {
    const auto idx = static_cast<std::size_t>(r) - 1;
    plot.add_row();
    plot.cell(curve[idx].x, 0).cell(curve[idx].y, 0);
  }
  bench::emit(plot, env, "Fig 1 — rank plot (log-spaced sample)");

  // Replica-count histogram (log bins): where the long tail lives.
  util::LogHistogram hist;
  hist.add_all(counts);
  util::print_banner(std::cout, "Fig 1 — replica-count histogram");
  hist.print(std::cout);
  return 0;
}
