// Result-caching experiment on the REAL query workload: replay a slice
// of the week's trace through a caching overlay and split the outcome by
// the workload's own structure — persistent-head queries vs everything
// else. Caching is the cheapest classical fix, and the measured workload
// bounds it the same way it bounds QRP and shortcuts: the stable head
// amortizes, the heavy tail never repeats at the same cache.
#include "bench/bench_common.hpp"

#include <unordered_map>
#include <unordered_set>

#include "src/overlay/topology.hpp"
#include "src/sim/result_cache.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto replay = cli.get_uint("replay", 8'000);
  bench::print_header(
      "exp_caching", env,
      "Result caching replayed over the measured workload: the head "
      "amortizes, the tail pays full price");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);
  const trace::QueryTrace queries =
      generate_query_trace(model, env.query_params());

  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);
  sim::ResultCacheParams rp;
  rp.flood_ttl = 2;
  sim::CachingSearchNetwork net(graph, store, rp);

  const std::unordered_set<trace::TermId> head(
      queries.persistent_terms().begin(), queries.persistent_terms().end());

  struct Bucket {
    std::size_t queries = 0, ok = 0, hits = 0;
    util::RunningStats msgs;
  };
  Bucket head_bucket, tail_bucket;

  // Queries come from a modest requester population (caching is
  // per-peer); replay in trace order.
  std::vector<NodeId> requesters;
  for (int i = 0; i < 10; ++i) {
    requesters.push_back(static_cast<NodeId>(rng.bounded(nodes)));
  }
  const std::size_t limit =
      std::min<std::size_t>(replay, queries.queries().size());
  for (std::size_t i = 0; i < limit; ++i) {
    const trace::Query& q = queries.queries()[i];
    const NodeId src = requesters[i % requesters.size()];
    const auto r = net.search(src, q.terms);
    const bool is_head =
        !q.terms.empty() && head.count(q.terms.front()) > 0;
    Bucket& b = is_head ? head_bucket : tail_bucket;
    ++b.queries;
    b.ok += r.success();
    b.hits += r.cache_hit;
    b.msgs.add(static_cast<double>(r.messages));
  }

  util::Table t({"workload slice", "queries", "success", "cache hits",
                 "msgs/query"});
  for (const auto& [name, b] :
       {std::pair<const char*, const Bucket&>{"persistent head", head_bucket},
        std::pair<const char*, const Bucket&>{"tail + transients",
                                              tail_bucket}}) {
    t.add_row();
    t.cell(name)
        .cell(static_cast<std::uint64_t>(b.queries))
        .percent(b.queries ? static_cast<double>(b.ok) /
                                 static_cast<double>(b.queries)
                           : 0.0,
                 1)
        .percent(b.queries ? static_cast<double>(b.hits) /
                                 static_cast<double>(b.queries)
                           : 0.0,
                 1)
        .cell(b.msgs.mean(), 0);
  }
  bench::emit(t, env, "Caching on the measured workload (overall hit rate " +
                          util::Table::format(net.hit_rate() * 100, 1) + "%)");
  return 0;
}
