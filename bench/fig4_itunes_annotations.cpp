// Figure 4(a-d): iTunes annotation popularity across 239 campus clients:
// song names, genres, albums and artists all follow Zipf-like long
// tails. Paper: 533,768 tracks / 117,068 unique; 64% singleton songs;
// 1,452 genres (8.7% of songs without one); 32,353 albums (8.1%
// missing, 65.7% singleton); 25,309 artists (65% singleton).
#include "bench/bench_common.hpp"

#include "src/analysis/replication.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

namespace {

void panel(const char* title, const char* paper_unique,
           const char* paper_singleton,
           const std::vector<std::uint64_t>& counts,
           const bench::BenchEnv& env) {
  util::Table t({"metric", "paper (full scale)", "measured"});
  t.add_row();
  t.cell("unique values").cell(paper_unique).cell(
      static_cast<std::uint64_t>(counts.size()));
  t.add_row();
  t.cell("singleton values").cell(paper_singleton).percent(
      util::singleton_fraction(counts));
  const auto curve = util::rank_frequency(counts);
  const auto fit = util::fit_zipf(
      curve, std::max<std::size_t>(50, curve.size() / 100));
  t.add_row();
  t.cell("zipf exponent (head fit)").cell("zipf-like").cell(fit.exponent, 2);
  bench::emit(t, env, title);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.25);
  bench::print_header("fig4_itunes_annotations", env,
                      "Fig 4(a-d): iTunes song/genre/album/artist long tails");

  const trace::ContentModel model(env.model_params());
  const trace::ItunesSnapshot snap =
      generate_itunes_crawl(model, env.itunes_params());

  util::Table overview({"metric", "paper (full scale)", "measured"});
  overview.add_row();
  overview.cell("clients").cell(std::uint64_t{239}).cell(
      static_cast<std::uint64_t>(snap.num_clients()));
  overview.add_row();
  overview.cell("tracks shared").cell("533,768").cell(snap.total_tracks());
  overview.add_row();
  overview.cell("tracks without genre").cell("8.7%").percent(
      snap.missing_genre_fraction());
  overview.add_row();
  overview.cell("tracks without album").cell("8.1%").percent(
      snap.missing_album_fraction());
  bench::emit(overview, env, "Fig 4 — trace overview");

  panel("Fig 4(a) — songs", "117,068 (64% singleton)", "64%",
        snap.song_client_counts(), env);
  panel("Fig 4(b) — genres", "1,452", "56%", snap.genre_client_counts(), env);
  panel("Fig 4(c) — albums", "32,353", "65.7%", snap.album_client_counts(),
        env);
  panel("Fig 4(d) — artists", "25,309", "65%", snap.artist_client_counts(),
        env);
  return 0;
}
