// Section VI experiment (Loo et al.'s rare-query definition): evaluate
// the week's query workload against a whole-network result index and
// count how many queries would return fewer than 20 results even if the
// flood reached EVERY peer.
//
// Paper: "fewer than 4% of the objects in the system are replicated on
// 20 or more peers" — so hybrid search's premise (common queries are
// satisfied cheaply by flooding) fails at the workload level too: the
// overwhelming majority of real queries are "rare" by Loo's own test,
// and a large share return nothing at all (the query/annotation
// mismatch).
#include "bench/bench_common.hpp"

#include "src/analysis/rare_queries.hpp"
#include "src/analysis/replication.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.05);
  const auto sample = cli.get_uint("sample-every", 25);
  bench::print_header(
      "exp_rare_queries", env,
      "Sec VI: almost every real query is 'rare' (< 20 results) even "
      "with whole-network evaluation");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const trace::QueryTrace queries =
      generate_query_trace(model, env.query_params());
  const analysis::GlobalResultIndex index(crawl);
  std::cout << "# index: " << index.indexed_terms() << " terms over "
            << crawl.total_objects() << " replicas\n";

  // Object-side statement (the paper's 4% line).
  {
    const auto counts = crawl.object_replica_counts();
    const auto s = analysis::summarize_replication(counts, crawl.num_peers());
    util::Table t({"metric", "paper", "measured"});
    t.add_row();
    t.cell("objects on >= 20 peers").cell("< 4%").percent(
        s.fraction_20_or_more);
    bench::emit(t, env, "Object-side: replication vs Loo's cutoff");
  }

  // Workload-side statement.
  util::Table t({"rare cutoff", "rare queries", "zero-result queries",
                 "median results", "mean results"});
  for (const std::uint64_t cutoff : {5ULL, 20ULL, 100ULL}) {
    const analysis::RareQueryStats stats = analysis::rare_query_stats(
        index, queries.queries(), cutoff, sample);
    t.add_row();
    t.cell(cutoff)
        .percent(stats.rare_fraction(), 1)
        .percent(stats.zero_fraction(), 1)
        .cell(stats.median_results, 0)
        .cell(stats.mean_results, 1);
  }
  bench::emit(t, env,
              "Workload-side: whole-network result counts for the week's "
              "queries (flooding can never beat these numbers)");
  return 0;
}
