// Related-work experiment: Gia under its published evaluation assumption
// (objects uniformly placed on up to 0.5% of peers) vs the measured Zipf
// replica distribution.
//
// Paper claim: "Gia was evaluated using a uniform object distribution on
// up to 0.5% of the peers. We show that the Zipf distribution exhibited
// in real-world P2P systems located fewer than 1% of the objects with
// replication ratios as high as 0.5%" — i.e. the uniform evaluation
// regime essentially never occurs, and Gia's success collapses on the
// real distribution.
#include "bench/bench_common.hpp"

#include "src/analysis/replication.hpp"
#include "src/sim/gia.hpp"
#include "src/sim/trial_runner.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

double locate_success(const sim::GiaNetwork& net,
                      const sim::Placement& placement,
                      const sim::GiaSearchParams& params, std::size_t trials,
                      std::uint64_t seed, std::size_t threads) {
  const std::size_t n = net.graph().num_nodes();
  const sim::TrialRunner runner({threads, seed});
  const sim::TrialAggregate agg =
      runner.run(trials, [&](std::size_t, util::Rng& rng) {
        const auto src = static_cast<NodeId>(rng.bounded(n));
        const auto obj = rng.bounded(placement.num_objects());
        const auto r = net.locate(src, placement.holders[obj], params, rng);
        sim::TrialOutcome out;
        out.success = r.success;
        out.messages = r.messages;
        out.peers_probed = r.peers_probed;
        return out;
      });
  return agg.success_rate();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.05);
  const auto nodes = cli.get_uint("nodes", 10'000);
  const auto trials = cli.get_uint("trials", 1'000);
  bench::print_header(
      "exp_gia_uniform_vs_zipf", env,
      "Related work: Gia's uniform-replication evaluation vs the measured "
      "Zipf distribution");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const auto crawl_counts = crawl.object_replica_counts();

  // How rare is Gia's evaluation regime in the real distribution? The
  // paper's cut is 0.5% of 37,572 peers = 188 copies; per-object replica
  // counts are scale-invariant in this generator, so the absolute cut
  // carries over to the scaled crawl (the relative cut does not).
  const auto milli5 = static_cast<std::uint64_t>(
      std::max(1.0, 0.005 * static_cast<double>(crawl.num_peers())));
  util::Table regime({"metric", "paper", "measured"});
  regime.add_row();
  regime.cell("objects on >= 188 peers (0.5% of full-scale)")
      .cell("< 1%")
      .percent(util::fraction_at_or_above(crawl_counts, 188), 3);
  regime.add_row();
  regime.cell("objects on >= 0.5% of peers (this scale)")
      .cell("-")
      .percent(util::fraction_at_or_above(crawl_counts, milli5), 2);
  bench::emit(regime, env, "How often Gia's assumed regime actually occurs");

  overlay::GiaParams gp;
  gp.num_nodes = nodes;
  util::Rng rng(env.seed);
  sim::PeerStore empty_store(nodes);
  empty_store.finalize();
  const sim::GiaNetwork net(overlay::gia_topology(gp, rng),
                            std::move(empty_store));

  sim::GiaSearchParams sp;
  sp.max_steps = static_cast<std::uint32_t>(cli.get_uint("steps", 256));

  util::Rng prng(env.seed + 1);
  constexpr std::size_t kObjects = 1'500;
  util::Table t({"placement", "replication", "success", "walk budget"});
  for (const double ratio : {0.001, 0.0025, 0.005}) {
    const auto copies = static_cast<std::size_t>(
        std::max(1.0, ratio * static_cast<double>(nodes)));
    const auto placement = sim::place_uniform(kObjects / 3, copies, nodes, prng);
    t.add_row();
    t.cell("uniform (Gia eval)")
        .cell(util::Table::format(ratio * 100, 2) + "%")
        .percent(
            locate_success(net, placement, sp, trials, env.seed + 2,
                           env.threads),
            1)
        .cell(static_cast<std::uint64_t>(sp.max_steps));
  }
  {
    const auto placement = sim::place_by_counts(
        sim::sample_replica_counts(crawl_counts, kObjects, prng), nodes, prng);
    t.add_row();
    t.cell("zipf (measured dist)")
        .cell("mean " +
              util::Table::format(
                  [&] {
                    util::RunningStats s;
                    for (auto c : crawl_counts) s.add(static_cast<double>(c));
                    return s.mean();
                  }(),
                  2) +
              " copies")
        .percent(
            locate_success(net, placement, sp, trials, env.seed + 3,
                           env.threads),
            1)
        .cell(static_cast<std::uint64_t>(sp.max_steps));
  }
  bench::emit(t, env,
              "Gia one-hop-replicated biased walks: uniform vs Zipf "
              "(paper: published numbers do not transfer)");
  return 0;
}
