// Crawl-bias experiment (Section II methodology check): the paper's
// numbers come from a lossy crawler — unreachable, busy and protected
// peers drop out of the sample (their own iTunes sweep reached 239 of
// 620 shares). Does the headline Zipf conclusion survive that loss?
//
// We crawl a ground-truth network with increasing failure rates and
// compare the observed replication marginals against the truth.
#include "bench/bench_common.hpp"

#include "src/analysis/replication.hpp"
#include "src/crawler/crawler.hpp"
#include "src/overlay/topology.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.05);
  bench::print_header(
      "exp_crawl_bias", env,
      "Sec II methodology: the Zipf marginals survive crawler loss");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot truth =
      generate_gnutella_crawl(model, env.crawl_params());
  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(
      truth.num_peers(), 8, rng);

  const auto truth_counts = truth.object_replica_counts();
  util::Table t({"crawler", "peers sampled", "unique objects",
                 "singleton", "on <= 37 peers", "zipf exponent"});
  {
    const auto s =
        analysis::summarize_replication(truth_counts, truth.num_peers());
    t.add_row();
    t.cell("ground truth")
        .cell(static_cast<std::uint64_t>(truth.num_peers()))
        .cell(s.unique_items)
        .percent(s.singleton_fraction)
        .percent(util::fraction_at_or_below(truth_counts, 37))
        .cell(s.zipf.exponent, 2);
  }

  struct Mix {
    const char* name;
    double unreachable, prot, busy;
  };
  for (const Mix mix : {Mix{"mild loss (~15%)", 0.10, 0.02, 0.05},
                        Mix{"paper-like (~35%)", 0.20, 0.07, 0.15},
                        Mix{"severe (~60%)", 0.45, 0.10, 0.20}}) {
    crawler::CrawlerParams cp;
    cp.p_unreachable = mix.unreachable;
    cp.p_protected = mix.prot;
    cp.p_busy = mix.busy;
    cp.seed = env.seed + 3;
    const crawler::Crawler crawler(cp);
    // Bootstrap from 20 spread-out seed addresses, as real crawlers do.
    std::vector<crawler::NodeId> seeds;
    for (std::size_t i = 0; i < 20; ++i) {
      seeds.push_back(static_cast<crawler::NodeId>(
          i * truth.num_peers() / 20));
    }
    const crawler::FileCrawl result = crawler.crawl(graph, truth, seeds);

    const auto counts = result.observed.object_replica_counts();
    const auto s = analysis::summarize_replication(
        counts, result.observed.num_peers());
    t.add_row();
    t.cell(mix.name)
        .cell(static_cast<std::uint64_t>(result.succeeded))
        .cell(s.unique_items)
        .percent(s.singleton_fraction)
        .percent(util::fraction_at_or_below(counts, 37))
        .cell(s.zipf.exponent, 2);
  }
  bench::emit(t, env,
              "Observed vs true replication under crawl loss (singleton "
              "fraction drifts up slightly; the long-tail verdict stands)");
  return 0;
}
