// QRP experiment: Gnutella's deployed content-centric synopsis (the
// Query Routing Protocol) on the measured content distribution.
//
// Two findings frame the paper's argument:
//   1. QRP is excellent at what it was built for — suppressing useless
//      last-hop deliveries to leaves (large message savings);
//   2. QRP does nothing for the paper's problem — it cannot make rare
//      or mismatched content findable; the ultrapeer-tier flood still
//      pays full cost and still fails on the Zipf tail. A synopsis that
//      describes what peers HAVE is not a synopsis of what users ASK.
#include "bench/bench_common.hpp"

#include "src/overlay/topology.hpp"
#include "src/sim/qrp.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 4'000);
  const auto num_queries = cli.get_uint("queries", 250);
  const auto ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 3));
  bench::print_header(
      "exp_qrp_filtering", env,
      "QRP saves leaf deliveries but cannot fix the query/annotation "
      "mismatch (content-centric baseline for Sec VII)");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  overlay::TwoTierParams tp;
  tp.num_nodes = nodes;
  util::Rng rng(env.seed);
  const overlay::TwoTierTopology topo = overlay::gnutella_two_tier(tp, rng);
  sim::QrpNetwork qrp(topo, store);
  std::cout << "# leaf QRP tables: 64Ki slots, mean fill "
            << util::Table::format(qrp.mean_fill() * 100, 2) << "%\n";

  // Two workloads: queries for content peers actually hold (answerable),
  // and queries with one term absent from every annotation (the
  // mismatch case: users asking in words files don't carry).
  util::Rng qrng(env.seed + 3);
  auto object_query = [&]() -> std::vector<sim::TermId> {
    for (;;) {
      const auto peer = static_cast<NodeId>(qrng.bounded(nodes));
      if (store.objects(peer).empty()) continue;
      const auto& obj =
          store.objects(peer)[qrng.bounded(store.objects(peer).size())];
      if (obj.terms.empty()) continue;
      return {obj.terms[qrng.bounded(obj.terms.size())]};
    }
  };

  struct Row {
    const char* name;
    util::RunningStats up, leaf, suppressed;
    std::size_t ok = 0, total = 0;
  };
  Row answerable{"answerable (annotation term)", {}, {}, {}, 0, 0};
  Row mismatch{"mismatched (query-only term)", {}, {}, {}, 0, 0};

  sim::SearchScratch scratch;  // BFS + match buffers, reused across queries
  for (std::uint64_t q = 0; q < num_queries; ++q) {
    const auto src = static_cast<NodeId>(qrng.bounded(nodes));
    {
      const auto r = qrp.search(src, object_query(), ttl, scratch);
      answerable.up.add(static_cast<double>(r.up_messages));
      answerable.leaf.add(static_cast<double>(r.leaf_messages));
      answerable.suppressed.add(static_cast<double>(r.leaf_suppressed));
      answerable.ok += !r.results.empty();
      ++answerable.total;
    }
    {
      // A term no file annotation can contain: ids beyond the whole
      // core + tail lexicon are query-only by construction.
      const std::vector<sim::TermId> missing{
          model.core_lexicon_size() + model.params().tail_lexicon_size +
          static_cast<sim::TermId>(q)};
      const auto r = qrp.search(src, missing, ttl, scratch);
      mismatch.up.add(static_cast<double>(r.up_messages));
      mismatch.leaf.add(static_cast<double>(r.leaf_messages));
      mismatch.suppressed.add(static_cast<double>(r.leaf_suppressed));
      mismatch.ok += !r.results.empty();
      ++mismatch.total;
    }
  }

  util::Table t({"workload", "success", "UP msgs", "leaf msgs",
                 "suppressed deliveries", "leaf savings"});
  for (const Row* row : {&answerable, &mismatch}) {
    const double candidates = row->leaf.mean() + row->suppressed.mean();
    t.add_row();
    t.cell(row->name)
        .percent(static_cast<double>(row->ok) /
                     static_cast<double>(row->total),
                 1)
        .cell(row->up.mean(), 0)
        .cell(row->leaf.mean(), 0)
        .cell(row->suppressed.mean(), 0)
        .percent(candidates > 0 ? row->suppressed.mean() / candidates : 0.0,
                 1);
  }
  bench::emit(t, env, "QRP filtering: savings without findability");
  std::cout << "\nReading: QRP suppresses the vast majority of leaf\n"
               "deliveries on BOTH workloads, but the mismatched workload\n"
               "still pays the full ultrapeer flood and finds nothing — the\n"
               "synopsis describes content, not queries.\n";
  return 0;
}
