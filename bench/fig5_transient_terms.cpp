// Figure 5: number of transiently popular query terms per evaluation
// interval, for several interval lengths. Paper: the overall mean is low
// (single digits) but the variance across intervals is significant.
#include "bench/bench_common.hpp"

#include "src/analysis/query_analysis.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 1.0);
  bench::print_header(
      "fig5_transient_terms", env,
      "Fig 5: transiently popular terms per interval; low mean, high "
      "variance across evaluation intervals");

  const trace::ContentModel model(env.model_params());
  const trace::QueryTrace trace =
      generate_query_trace(model, env.query_params());
  std::cout << "# queries: " << trace.queries().size()
            << ", ground-truth flash events: " << trace.events().size()
            << "\n";

  const analysis::TransientPolicy policy;
  util::Table t({"interval (min)", "eval intervals", "mean transients",
                 "stddev", "max"});
  for (const double minutes : {15.0, 30.0, 60.0, 120.0}) {
    const analysis::QueryTermAnalyzer analyzer(
        trace.queries(), trace.duration_s(), minutes * 60.0, 0.10);
    const auto series = analyzer.transient_count_series(policy);
    util::RunningStats stats;
    for (auto c : series) stats.add(c);
    t.add_row();
    t.cell(minutes, 0)
        .cell(static_cast<std::uint64_t>(series.size()))
        .cell(stats.mean(), 2)
        .cell(stats.stddev(), 2)
        .cell(stats.max(), 0);
  }
  bench::emit(t, env, "Fig 5 — transient term counts by interval length");

  // One full series (60-minute intervals) for plotting.
  const analysis::QueryTermAnalyzer analyzer(
      trace.queries(), trace.duration_s(), 3600.0, 0.10);
  const auto series = analyzer.transient_count_series(policy);
  util::Table plot({"interval", "transient_terms"});
  for (std::size_t i = 0; i < series.size();
       i += std::max<std::size_t>(1, series.size() / 24)) {
    plot.add_row();
    plot.cell(static_cast<std::uint64_t>(i)).cell(
        static_cast<std::uint64_t>(series[i]));
  }
  bench::emit(plot, env, "Fig 5 — 60-minute series (sampled)");
  return 0;
}
