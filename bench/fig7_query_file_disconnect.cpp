// Figure 7: Jaccard similarity between each interval's popular query
// terms and the popular file-annotation terms (F*). Paper: < 20% at
// every interval length, ~15% on average — despite both distributions
// being Zipf, the popular sets barely overlap. This is the paper's
// central "mismatch" result.
#include "bench/bench_common.hpp"

#include "src/analysis/query_analysis.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 1.0);
  const auto top_k = cli.get_uint("top-k", 50);
  bench::print_header(
      "fig7_query_file_disconnect", env,
      "Fig 7: Jaccard(Q*_t, F*) < 0.20 for all intervals, ~0.15 mean");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const trace::QueryTrace trace =
      generate_query_trace(model, env.query_params());

  const auto file_popular = crawl.popular_file_terms(top_k);

  analysis::PopularPolicy policy;
  policy.top_k = top_k;

  util::Table t(
      {"interval (min)", "mean Jaccard", "max Jaccard", "paper bound"});
  for (const double minutes : {30.0, 60.0, 120.0}) {
    const analysis::QueryTermAnalyzer analyzer(
        trace.queries(), trace.duration_s(), minutes * 60.0, 0.10);
    const auto series = analyzer.disconnect_series(file_popular, policy);
    util::RunningStats stats;
    for (double j : series) stats.add(j);
    t.add_row();
    t.cell(minutes, 0).cell(stats.mean(), 3).cell(stats.max(), 3).cell(
        "< 0.20");
  }
  bench::emit(t, env, "Fig 7 — query/file popular-term disconnect");

  // Contrast with Fig 6 on the same trace: stability >> disconnect.
  const analysis::QueryTermAnalyzer analyzer(
      trace.queries(), trace.duration_s(), 3600.0, 0.10);
  util::RunningStats stability, disconnect;
  for (double j : analyzer.stability_series(policy)) stability.add(j);
  for (double j : analyzer.disconnect_series(file_popular, policy)) {
    disconnect.add(j);
  }
  util::Table contrast({"series", "mean Jaccard"});
  contrast.add_row();
  contrast.cell("popular-set stability (Fig 6)").cell(stability.mean(), 3);
  contrast.add_row();
  contrast.cell("query-vs-file overlap (Fig 7)").cell(disconnect.mean(), 3);
  bench::emit(contrast, env, "Fig 6 vs Fig 7 — the paper's core contrast");
  return 0;
}
