// Robustness experiment: graceful degradation of the registered search
// engines (flood, random walk, Gia, hybrid flood+DHT, pure DHT) under
// message loss x peer churn x recovery policy.
//
// The paper's Section V/VII comparison assumes a lossless, always-on
// network; the replication surveys it cites (Thampi et al.) evaluate
// search schemes under failures and retries. This bench closes that gap:
// every engine from sim::engine_registry() runs under
// sim::with_faults() (deterministic per-message drops keyed by
// (seed, trial, message index), crash schedules snapshot from
// overlay::ChurnProcess) with and without timeout/retry/backoff
// recovery, emitting success-rate and message-overhead degradation
// curves. The loss-0 / no-crash / no-retry cell is verified in-process
// against the undecorated engines: it must match bit-for-bit.
//
// --engine=<name> restricts the sweep to one registered engine.
#include "bench/bench_common.hpp"

#include "src/sim/fault.hpp"
#include "src/sim/fault_decorator.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

/// Query source for a trial: an online peer (dead users don't search),
/// drawn from the trial's own stream so the pick is schedule-independent.
NodeId draw_source(std::size_t nodes, const sim::FaultPlan& plan,
                   util::Rng& rng) {
  for (int tries = 0; tries < 1000; ++tries) {
    const auto src = static_cast<NodeId>(rng.bounded(nodes));
    if (plan.online(src)) return src;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 250);
  const auto flood_ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 3));
  const double jitter_ms = bench::checked_double_flag(cli, "jitter", 0.0,
                                                      0.0, 1e6);
  bench::print_header(
      "exp_fault_tolerance", env,
      "degradation of flood/walk/Gia/hybrid/DHT under message loss x churn "
      "x recovery policy; loss-0 no-crash reproduces the fault-free engines");

  const bench::SearchWorld world =
      bench::build_search_world(env, nodes, num_queries, /*with_gia=*/true);
  std::cout << "# network: " << nodes << " nodes, "
            << world.store.total_objects() << " objects, "
            << world.queries.size()
            << " queries; one-time DHT publish cost: "
            << world.publish_messages << " messages\n";

  const sim::TrialRunner runner({env.threads, env.seed + 11});

  sim::EngineWorld ew = world.engine_world();
  ew.hybrid = sim::HybridParams{flood_ttl, 20};
  ew.walk.walkers = 16;
  ew.walk.max_steps = 64;
  ew.gia_search.max_steps = 512;
  const std::vector<bench::NamedEngine> engines =
      bench::make_sweep_engines(env, ew);

  sim::RecoveryPolicy no_recovery;
  no_recovery.max_retries = 0;
  sim::RecoveryPolicy retry_policy;
  retry_policy.max_retries = 2;
  retry_policy.ttl_escalation = 1;
  retry_policy.budget_escalation = 2.0;

  const double loss_levels[] = {0.0, 0.05, 0.15};
  const double offline_levels[] = {0.0, 0.25, 0.5};
  const struct {
    const char* name;
    const sim::RecoveryPolicy* policy;
  } policies[] = {{"none", &no_recovery}, {"retry2", &retry_policy}};

  util::Table t({"loss", "offline", "policy", "engine", "success",
                 "msgs/query", "dropped/q", "retries/q", "route-around/q"});
  bool regression_checked = false;
  bool regression_ok = true;

  std::uint64_t cell = 0;
  for (const double loss : loss_levels) {
    for (const double offline : offline_levels) {
      ++cell;
      sim::FaultParams fparams;
      fparams.loss_rate = loss;
      fparams.jitter_max_ms = jitter_ms;
      fparams.seed = env.seed + 0xFA * cell;

      sim::FaultPlan plan;
      if (offline > 0.0) {
        const bench::ChurnMask mask = bench::steady_state_churn_mask(
            nodes, offline, env.seed + 17 * cell);
        plan = sim::FaultPlan(fparams, mask.online);
      } else {
        plan = sim::FaultPlan(fparams);
      }

      for (const auto& pol : policies) {
        const auto make_query = [&](std::size_t q, util::Rng& trng) {
          sim::Query query;
          query.source = draw_source(nodes, plan, trng);
          query.terms = world.queries[q];
          query.ttl = flood_ttl;
          query.trial = q;
          return query;
        };

        std::vector<sim::TrialAggregate> rows;
        rows.reserve(engines.size());
        for (const bench::NamedEngine& ne : engines) {
          const sim::FaultInjectedEngine faulty =
              sim::with_faults(*ne.engine, plan, *pol.policy);
          rows.push_back(bench::run_engine_sweep(runner, world.queries.size(),
                                                 faulty, make_query));
        }

        // Acceptance gate: the fault-free cell must reproduce the plain
        // (undecorated) engines exactly — the decorator with an inert
        // plan is required to be bit-for-bit invisible.
        if (!regression_checked && loss == 0.0 && offline == 0.0 &&
            pol.policy == &no_recovery) {
          regression_checked = true;
          for (std::size_t i = 0; i < engines.size(); ++i) {
            const sim::TrialAggregate plain = bench::run_engine_sweep(
                runner, world.queries.size(), *engines[i].engine,
                [&](std::size_t q, util::Rng& trng) {
                  sim::Query query;
                  query.source = static_cast<NodeId>(trng.bounded(nodes));
                  query.terms = world.queries[q];
                  query.ttl = flood_ttl;
                  query.trial = q;
                  return query;
                });
            if (plain.successes != rows[i].successes ||
                plain.messages != rows[i].messages) {
              regression_ok = false;
              std::cerr << "REGRESSION: fault-free " << engines[i].name
                        << " diverges from the plain engine\n";
            }
          }
        }

        for (std::size_t i = 0; i < engines.size(); ++i) {
          t.add_row();
          t.percent(loss, 0)
              .percent(offline, 0)
              .cell(pol.name)
              .cell(std::string(engines[i].name))
              .percent(rows[i].success_rate(), 1)
              .cell(rows[i].mean_messages(), 1)
              .cell(rows[i].mean_extra(0), 1)
              .cell(rows[i].mean_extra(1), 2)
              .cell(rows[i].mean_extra(2), 2);
        }
      }
    }
  }
  bench::emit(t, env,
              "Fault tolerance — success/overhead degradation under loss x "
              "churn x recovery");
  std::cout << "# loss-0/no-crash regression vs fault-free engines: "
            << (regression_ok ? "identical" : "DIVERGED") << "\n";
  return regression_ok ? 0 : 1;
}
