// Robustness experiment: graceful degradation of the five search engines
// (flood, random walk, Gia, hybrid flood+DHT, pure DHT) under message
// loss x peer churn x recovery policy.
//
// The paper's Section V/VII comparison assumes a lossless, always-on
// network; the replication surveys it cites (Thampi et al.) evaluate
// search schemes under failures and retries. This bench closes that gap:
// every engine runs through sim::FaultPlan (deterministic per-message
// drops keyed by (seed, trial, message index), crash schedules snapshot
// from overlay::ChurnProcess) with and without timeout/retry/backoff
// recovery, emitting success-rate and message-overhead degradation
// curves. The loss-0 / no-crash / no-retry cell is verified in-process
// against the fault-free engines: it must match bit-for-bit.
#include "bench/bench_common.hpp"

#include "src/overlay/churn.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/gia.hpp"
#include "src/sim/hybrid.hpp"
#include "src/sim/random_walk.hpp"
#include "src/sim/search_scratch.hpp"
#include "src/sim/trial_runner.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

/// Query workload: object-derived conjunctive queries (1-3 terms of a
/// real object), so every query has at least one satisfying object.
std::vector<std::vector<sim::TermId>> make_queries(const sim::PeerStore& store,
                                                   std::size_t count,
                                                   util::Rng& rng) {
  std::vector<std::vector<sim::TermId>> queries;
  std::size_t guard = 0;
  while (queries.size() < count && guard++ < 50 * count) {
    const auto peer = static_cast<NodeId>(rng.bounded(store.num_peers()));
    if (store.objects(peer).empty()) continue;
    const auto& obj =
        store.objects(peer)[rng.bounded(store.objects(peer).size())];
    if (obj.terms.empty()) continue;
    std::vector<sim::TermId> q;
    const std::size_t n = 1 + rng.bounded(std::min<std::size_t>(3, obj.terms.size()));
    for (std::size_t i = 0; i < n; ++i) {
      q.push_back(obj.terms[rng.bounded(obj.terms.size())]);
    }
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Query source for a trial: an online peer (dead users don't search),
/// drawn from the trial's own stream so the pick is schedule-independent.
NodeId draw_source(std::size_t nodes, const sim::FaultPlan& plan,
                   util::Rng& rng) {
  for (int tries = 0; tries < 1000; ++tries) {
    const auto src = static_cast<NodeId>(rng.bounded(nodes));
    if (plan.online(src)) return src;
  }
  return 0;
}

struct EngineRow {
  const char* name;
  sim::TrialAggregate agg;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 250);
  const auto flood_ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 3));
  const double jitter_ms = cli.get_double("jitter", 0.0);
  bench::print_header(
      "exp_fault_tolerance", env,
      "degradation of flood/walk/Gia/hybrid/DHT under message loss x churn "
      "x recovery policy; loss-0 no-crash reproduces the fault-free engines");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);
  sim::ChordDht dht(nodes, env.seed + 4);
  const std::uint64_t publish_messages = dht.publish_store(store);

  overlay::GiaParams gp;
  gp.num_nodes = nodes;
  util::Rng gia_rng(env.seed + 3);
  const sim::GiaNetwork gia(overlay::gia_topology(gp, gia_rng), store);

  util::Rng qrng(env.seed + 7);
  const auto queries = make_queries(store, num_queries, qrng);
  std::cout << "# network: " << nodes << " nodes, " << store.total_objects()
            << " objects, " << queries.size()
            << " queries; one-time DHT publish cost: " << publish_messages
            << " messages\n";

  const sim::TrialRunner runner({env.threads, env.seed + 11});

  const sim::HybridParams hp{flood_ttl, 20};
  sim::RandomWalkParams wp;
  wp.walkers = 16;
  wp.max_steps = 64;
  sim::GiaSearchParams gsp;
  gsp.max_steps = 512;

  sim::RecoveryPolicy no_recovery;
  no_recovery.max_retries = 0;
  sim::RecoveryPolicy retry_policy;
  retry_policy.max_retries = 2;
  retry_policy.ttl_escalation = 1;
  retry_policy.budget_escalation = 2.0;

  const double loss_levels[] = {0.0, 0.05, 0.15};
  const double offline_levels[] = {0.0, 0.25, 0.5};
  const struct {
    const char* name;
    const sim::RecoveryPolicy* policy;
  } policies[] = {{"none", &no_recovery}, {"retry2", &retry_policy}};

  util::Table t({"loss", "offline", "policy", "engine", "success",
                 "msgs/query", "dropped/q", "retries/q", "route-around/q"});
  bool regression_checked = false;
  bool regression_ok = true;

  std::uint64_t cell = 0;
  for (const double loss : loss_levels) {
    for (const double offline : offline_levels) {
      ++cell;
      sim::FaultParams fparams;
      fparams.loss_rate = loss;
      fparams.jitter_max_ms = jitter_ms;
      fparams.seed = env.seed + 0xFA * cell;

      // Crash schedule: a session-churn process whose steady state hits
      // the target offline fraction, advanced well past its warm-up.
      sim::FaultPlan plan;
      if (offline > 0.0) {
        overlay::ChurnParams cp;
        cp.mean_online_s = (1.0 - offline) * 3600.0;
        cp.mean_offline_s = offline * 3600.0;
        cp.seed = env.seed + 17 * cell;
        overlay::ChurnProcess churn(nodes, cp);
        churn.advance(7200.0);
        plan = sim::FaultPlan::from_churn(fparams, churn);
      } else {
        plan = sim::FaultPlan(fparams);
      }

      for (const auto& pol : policies) {
        const sim::RecoveryPolicy& policy = *pol.policy;

        auto outcome_of = [](bool success, std::uint64_t messages,
                             const sim::FaultStats& fault) {
          sim::TrialOutcome out;
          out.success = success;
          out.messages = messages;
          out.extra[0] = fault.dropped;
          out.extra[1] = fault.retries;
          out.extra[2] = fault.route_around_hops;
          return out;
        };

        // Each worker shard owns one SearchScratch; scratch state cannot
        // leak into results (epoch-stamped marks), so the aggregate stays
        // bit-identical for any --threads value.
        const auto make_scratch = [] { return sim::SearchScratch{}; };
        EngineRow rows[] = {
            {"flood",
             runner.run(queries.size(), make_scratch,
                        [&](std::size_t q, util::Rng& trng,
                            sim::SearchScratch& scratch) {
               sim::FaultSession faults(plan, q);
               const NodeId src = draw_source(nodes, plan, trng);
               const auto r =
                   sim::flood_search(graph, store, src, queries[q], flood_ttl,
                                     scratch, faults, policy);
               return outcome_of(!r.results.empty(), r.messages, r.fault);
             })},
            {"random-walk",
             runner.run(queries.size(), make_scratch,
                        [&](std::size_t q, util::Rng& trng,
                            sim::SearchScratch& scratch) {
               sim::FaultSession faults(plan, q);
               const NodeId src = draw_source(nodes, plan, trng);
               const auto r =
                   sim::random_walk_search(graph, store, src, queries[q], wp,
                                           trng, scratch, faults, policy);
               return outcome_of(r.success, r.messages, r.fault);
             })},
            {"gia",
             runner.run(queries.size(), make_scratch,
                        [&](std::size_t q, util::Rng& trng,
                            sim::SearchScratch& scratch) {
               sim::FaultSession faults(plan, q);
               const NodeId src = draw_source(nodes, plan, trng);
               const auto r = gia.search(src, queries[q], gsp, trng, scratch,
                                         faults, policy);
               return outcome_of(r.success, r.messages, r.fault);
             })},
            {"hybrid",
             runner.run(queries.size(), make_scratch,
                        [&](std::size_t q, util::Rng& trng,
                            sim::SearchScratch& scratch) {
               sim::FaultSession faults(plan, q);
               const NodeId src = draw_source(nodes, plan, trng);
               const auto r =
                   sim::hybrid_search(graph, store, dht, src, queries[q], hp,
                                      scratch, faults, policy);
               return outcome_of(r.success(), r.total_messages(), r.fault);
             })},
            {"dht-only",
             runner.run(queries.size(), [&](std::size_t q, util::Rng& trng) {
               sim::FaultSession faults(plan, q);
               const NodeId src = draw_source(nodes, plan, trng);
               const auto r =
                   sim::dht_only_search(dht, src, queries[q], faults, policy);
               return outcome_of(r.success(), r.total_messages(), r.fault);
             })},
        };

        // Acceptance gate: the fault-free cell must reproduce the plain
        // (pre-fault-layer) engines exactly.
        if (!regression_checked && loss == 0.0 && offline == 0.0 &&
            &policy == &no_recovery) {
          regression_checked = true;
          const sim::TrialAggregate plain[] = {
              runner.run(queries.size(), make_scratch,
                         [&](std::size_t q, util::Rng& trng,
                             sim::SearchScratch& scratch) {
                const auto src = static_cast<NodeId>(trng.bounded(nodes));
                const auto r = sim::flood_search(graph, store, src, queries[q],
                                                 flood_ttl, scratch);
                sim::TrialOutcome out;
                out.success = !r.results.empty();
                out.messages = r.messages;
                return out;
              }),
              runner.run(queries.size(), make_scratch,
                         [&](std::size_t q, util::Rng& trng,
                             sim::SearchScratch& scratch) {
                const auto src = static_cast<NodeId>(trng.bounded(nodes));
                const auto r = sim::random_walk_search(
                    graph, store, src, queries[q], wp, trng, scratch);
                sim::TrialOutcome out;
                out.success = r.success;
                out.messages = r.messages;
                return out;
              }),
              runner.run(queries.size(), make_scratch,
                         [&](std::size_t q, util::Rng& trng,
                             sim::SearchScratch& scratch) {
                const auto src = static_cast<NodeId>(trng.bounded(nodes));
                const auto r = gia.search(src, queries[q], gsp, trng, scratch);
                sim::TrialOutcome out;
                out.success = r.success;
                out.messages = r.messages;
                return out;
              }),
              runner.run(queries.size(), make_scratch,
                         [&](std::size_t q, util::Rng& trng,
                             sim::SearchScratch& scratch) {
                const auto src = static_cast<NodeId>(trng.bounded(nodes));
                const auto r = sim::hybrid_search(graph, store, dht, src,
                                                  queries[q], hp, scratch);
                sim::TrialOutcome out;
                out.success = r.success();
                out.messages = r.total_messages();
                return out;
              }),
              runner.run(queries.size(), [&](std::size_t q, util::Rng& trng) {
                const auto src = static_cast<NodeId>(trng.bounded(nodes));
                const auto r = sim::dht_only_search(dht, src, queries[q]);
                sim::TrialOutcome out;
                out.success = r.success();
                out.messages = r.total_messages();
                return out;
              }),
          };
          for (std::size_t i = 0; i < std::size(plain); ++i) {
            if (plain[i].successes != rows[i].agg.successes ||
                plain[i].messages != rows[i].agg.messages) {
              regression_ok = false;
              std::cerr << "REGRESSION: fault-free " << rows[i].name
                        << " diverges from the plain engine\n";
            }
          }
        }

        for (const EngineRow& row : rows) {
          t.add_row();
          t.percent(loss, 0)
              .percent(offline, 0)
              .cell(pol.name)
              .cell(row.name)
              .percent(row.agg.success_rate(), 1)
              .cell(row.agg.mean_messages(), 1)
              .cell(row.agg.mean_extra(0), 1)
              .cell(row.agg.mean_extra(1), 2)
              .cell(row.agg.mean_extra(2), 2);
        }
      }
    }
  }
  bench::emit(t, env,
              "Fault tolerance — success/overhead degradation under loss x "
              "churn x recovery");
  std::cout << "# loss-0/no-crash regression vs fault-free engines: "
            << (regression_ok ? "identical" : "DIVERGED") << "\n";
  return regression_ok ? 0 : 1;
}
