// Chaos harness: every named failure scenario (sim::kScenarioRegistry —
// bursty loss, flash partitions, straggler tails, mass churn, and their
// composition) x engine x recovery policy, reported SLO-style: success
// rate, graceful-degradation split (gave up early vs nothing was
// reachable), p50/p99 time-to-completion, message cost, and simulated
// recovery waiting.
//
// The comparison that matters: the fixed PR-2 policy (timeout 400ms,
// retry x2, exponential backoff) vs the adaptive one (latency-quantile
// timeouts, hedged re-issue gated on fault suspicion, per-neighbor
// circuit breaker). The closing verdict table marks the scenarios where
// adaptive recovery beats fixed on success rate or p99 latency at
// comparable (<= 1.5x) message cost.
//
// --scenario=<name> restricts the sweep to one scenario,
// --engine=<name> to one registered engine.
#include "bench/bench_common.hpp"

#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

/// Query source for a trial: a peer online under the static snapshot
/// (dead users don't search), drawn from the trial's own stream.
NodeId draw_source(std::size_t nodes, const sim::FaultPlan& plan,
                   util::Rng& rng) {
  for (int tries = 0; tries < 1000; ++tries) {
    const auto src = static_cast<NodeId>(rng.bounded(nodes));
    if (plan.online(src)) return src;
  }
  return 0;
}

/// Ground truth for the degradation split: every peer holding a
/// conjunctive match for each workload query. Measurement-only — it
/// rides along as Query::audit_holders and never influences the search.
std::vector<std::vector<NodeId>> audit_holders_for(
    const sim::PeerStore& store,
    const std::vector<std::vector<sim::TermId>>& queries) {
  std::vector<std::vector<NodeId>> holders(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (NodeId v = 0; v < store.num_peers(); ++v) {
      if (!store.may_match(v, queries[q])) continue;
      if (!store.match(v, queries[q]).empty()) holders[q].push_back(v);
    }
  }
  return holders;
}

/// One (scenario, policy, engine) cell plus the per-trial side channels
/// the integer-sum TrialAggregate cannot carry.
struct Cell {
  sim::TrialAggregate agg;
  std::vector<double> clocks;  // per-trial completion time, seconds
  double wait_ms_sum = 0.0;
  std::uint64_t nothing_reachable = 0;
};

/// Per-policy pool across engines, for the scenario-level verdict.
/// p99 is averaged per engine, not pooled: the engines' clocks live on
/// very different scales (a serial walk's tail is tens of seconds, a
/// DHT lookup's a few), and a pooled quantile would only ever see the
/// slowest engine.
struct PolicyPool {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  std::uint64_t messages = 0;
  std::vector<double> engine_p99s;

  void add(const Cell& cell) {
    trials += cell.agg.trials;
    successes += cell.agg.successes;
    messages += cell.agg.messages;
    engine_p99s.push_back(util::quantile(cell.clocks, 0.99));
  }
  [[nodiscard]] double mean_p99() const {
    double sum = 0.0;
    for (double p : engine_p99s) sum += p;
    return engine_p99s.empty() ? 0.0
                               : sum / static_cast<double>(engine_p99s.size());
  }
  [[nodiscard]] double success_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] double mean_messages() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(messages) /
                             static_cast<double>(trials);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 1'200);
  const auto num_queries = cli.get_uint("queries", 250);
  const auto ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 3));
  bench::print_header(
      "exp_chaos", env,
      "structured failure scenarios x engine x recovery policy; adaptive "
      "recovery (quantile timeouts + hedging + breaker) vs the fixed "
      "timeout/retry/backoff policy");

  const bench::SearchWorld world =
      bench::build_search_world(env, nodes, num_queries);
  const std::vector<std::vector<NodeId>> holders =
      audit_holders_for(world.store, world.queries);

  sim::EngineWorld ew = world.engine_world();
  ew.timing.seed = bench::seed_stream(env.seed, 11);  // 20-200ms links
  ew.hybrid = sim::HybridParams{ttl, 20};
  ew.walk.walkers = 16;
  ew.walk.max_steps = 64;

  std::vector<bench::NamedEngine> engines;
  if (!env.engine.empty()) {
    engines = bench::make_sweep_engines(env, ew);
  } else {
    for (const std::string_view name :
         {"flood", "random-walk", "hybrid", "dht-only"}) {
      auto engine = sim::make_engine(name, ew);
      if (engine != nullptr) {
        engines.push_back({sim::find_engine(name)->name, std::move(engine)});
      }
    }
  }
  std::cout << "# network: " << nodes << " nodes, "
            << world.store.total_objects() << " objects, "
            << world.queries.size() << " queries\n";

  sim::RecoveryPolicy fixed;  // the PR-2 policy: fixed timeout + retry x2
  fixed.max_retries = 2;
  sim::RecoveryPolicy adaptive = fixed;  // same retry budget, adaptive on top
  adaptive.adaptive_timeout = true;
  // One hedge: converts recoverable failures without doubling the tail
  // of trials that exhaust every attempt anyway.
  adaptive.max_hedges = 1;
  // Trip only persistently failing neighbors: bursty edges recover, and
  // a low threshold writes them off while they are still useful.
  adaptive.breaker_failures = 6;
  const struct {
    const char* name;
    const sim::RecoveryPolicy* policy;
  } policies[] = {{"fixed", &fixed}, {"adaptive", &adaptive}};

  const sim::TrialRunner runner({env.threads, env.seed + 23});
  const std::size_t trials = world.queries.size();

  util::Table t({"scenario", "engine", "policy", "success", "gave-up",
                 "no-reach", "p50 s", "p99 s", "msgs/q", "wait ms/q",
                 "retries/q", "hedges/q"});

  struct Verdict {
    std::string_view scenario;
    PolicyPool fixed_pool, adaptive_pool;
  };
  std::vector<Verdict> verdicts;

  std::uint64_t scenario_index = 0;
  for (const sim::Scenario& scenario : sim::scenario_registry()) {
    ++scenario_index;
    if (!env.scenario.empty() && env.scenario != scenario.name) continue;
    const sim::FaultPlan plan = sim::FaultPlan::from_scenario(
        scenario.spec, world.graph,
        bench::seed_stream(env.seed, 0xC4A05 + scenario_index));
    Verdict verdict{scenario.name, {}, {}};

    for (const auto& pol : policies) {
      for (const bench::NamedEngine& ne : engines) {
        const sim::FaultInjectedEngine faulty =
            sim::with_faults(*ne.engine, plan, *pol.policy);
        Cell cell;
        cell.clocks.assign(trials, 0.0);
        std::vector<double> waits(trials, 0.0);
        std::vector<std::uint8_t> unreachable(trials, 0);
        cell.agg = runner.run(
            trials, [] { return sim::EngineContext{}; },
            [&](std::size_t q, util::Rng& trng, sim::EngineContext& ctx) {
              ctx.rng = &trng;
              sim::Query query;
              query.source = draw_source(nodes, plan, trng);
              query.terms = world.queries[q];
              query.audit_holders = holders[q];
              query.ttl = ttl;
              query.trial = q;
              const sim::SearchOutcome r = faulty.search(query, ctx);
              cell.clocks[q] = r.timing.has_value() ? r.timing->clock_s : 0.0;
              waits[q] = r.fault.recovery_wait_ms;
              sim::TrialOutcome out;
              out.success = r.success;
              out.messages = r.messages;
              out.peers_probed = r.peers_probed;
              out.extra[0] = r.fault.dropped;
              out.extra[1] = r.fault.retries;
              out.extra[2] = r.fault.hedges;
              if (r.degradation.has_value()) {
                out.extra[3] =
                    r.degradation->gave_up_early(r.success) ? 1 : 0;
                unreachable[q] = r.degradation->nothing_reachable() ? 1 : 0;
              }
              return out;
            });
        for (double w : waits) cell.wait_ms_sum += w;
        for (std::uint8_t u : unreachable) cell.nothing_reachable += u;
        (pol.policy == &fixed ? verdict.fixed_pool : verdict.adaptive_pool)
            .add(cell);

        const double denom = static_cast<double>(cell.agg.trials);
        t.add_row();
        t.cell(std::string(scenario.name))
            .cell(std::string(ne.name))
            .cell(pol.name)
            .percent(cell.agg.success_rate(), 1)
            .percent(cell.agg.mean_extra(3), 1)
            .percent(static_cast<double>(cell.nothing_reachable) / denom, 1)
            .cell(util::quantile(cell.clocks, 0.50), 3)
            .cell(util::quantile(cell.clocks, 0.99), 3)
            .cell(cell.agg.mean_messages(), 1)
            .cell(cell.wait_ms_sum / denom, 0)
            .cell(cell.agg.mean_extra(1), 2)
            .cell(cell.agg.mean_extra(2), 2);
      }
    }
    verdicts.push_back(std::move(verdict));
  }
  bench::emit(t, env,
              "Chaos sweep — scenario x engine x recovery policy (SLO view)");

  // Scenario-level verdict, pooled across engines: adaptive "wins" when
  // it improves success or p99 completion time without spending more
  // than 1.5x the fixed policy's messages.
  util::Table v({"scenario", "success fixed", "success adaptive", "p99 fixed",
                 "p99 adaptive", "msg ratio", "adaptive wins?"});
  std::size_t wins = 0;
  for (const Verdict& verdict : verdicts) {
    const double sf = verdict.fixed_pool.success_rate();
    const double sa = verdict.adaptive_pool.success_rate();
    const double pf = verdict.fixed_pool.mean_p99();
    const double pa = verdict.adaptive_pool.mean_p99();
    const double mf = verdict.fixed_pool.mean_messages();
    const double ma = verdict.adaptive_pool.mean_messages();
    const double ratio = mf > 0.0 ? ma / mf : 1.0;
    const bool comparable_cost = ratio <= 1.5;
    const bool win =
        comparable_cost && (sa > sf + 0.005 || pa < pf * 0.95);
    wins += win;
    v.add_row();
    v.cell(std::string(verdict.scenario))
        .percent(sf, 1)
        .percent(sa, 1)
        .cell(pf, 3)
        .cell(pa, 3)
        .cell(ratio, 2)
        .cell(win ? "yes" : "no");
  }
  bench::emit(v, env, "Adaptive vs fixed recovery — scenario verdicts");
  std::cout << "# adaptive recovery wins " << wins << "/" << verdicts.size()
            << " scenarios (win = better success or p99 at <= 1.5x messages)\n";
  return 0;
}
