// Shared scaffolding for the figure/experiment harnesses: every binary
// accepts --scale (fraction of the paper's full experiment size; 1.0
// reproduces the Apr'07 crawl volume and needs several GB of RAM),
// --seed, --csv (append machine-readable rows to stdout), --threads
// (Monte-Carlo worker count; 0 = hardware concurrency), and — for the
// engine sweeps — --engine (a sim::engine_registry() name). Trial
// results are bit-identical for any --threads value: see
// sim::TrialRunner.
//
// Beyond CLI parsing this header owns the world-building the engine
// benches share: the crawl-derived PeerStore + overlay + DHT (+ Gia)
// world, the object-derived query workload, steady-state churn masks,
// the Fig 8 topology/placement sweeps, and run_engine_sweep(), the one
// TrialRunner adapter that drives any registered SearchEngine.
#pragma once

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/overlay/churn.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/engine_registry.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/fault_decorator.hpp"
#include "src/sim/trial_runner.hpp"
#include "src/trace/content_model.hpp"
#include "src/trace/gnutella.hpp"
#include "src/trace/itunes.hpp"
#include "src/trace/query_trace.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace qcp2p::bench {

/// Strictly parsed double flag: the whole value must parse and land in
/// [lo, hi] — exit 2 otherwise. Cli::get_double tolerates trailing
/// garbage and NaN ("0.5x", "nan"), which a fault fraction must not:
/// a silently-misread loss rate still "works" but measures the wrong
/// experiment.
inline double checked_double_flag(const util::Cli& cli,
                                  const std::string& name, double def,
                                  double lo, double hi) {
  if (!cli.has(name)) return def;
  const std::string raw = cli.get(name, "");
  double value = def;
  const char* const end = raw.data() + raw.size();
  const auto [parse_end, ec] = std::from_chars(raw.data(), end, value);
  if (ec != std::errc{} || parse_end != end || std::isnan(value) ||
      value < lo || value > hi) {
    std::cerr << "--" << name << " must be a number in [" << lo << ", " << hi
              << "], got '" << raw << "'\n";
    std::exit(2);
  }
  return value;
}

struct BenchEnv {
  double scale = 0.125;
  std::uint64_t seed = 42;
  bool csv = false;
  /// Monte-Carlo trial workers (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Registered engine name selecting a single engine in the sweep
  /// benches; empty = each bench's default set.
  std::string engine;
  /// Named failure scenario (sim::kScenarioRegistry) the bench should run
  /// under; empty = fault-free (an inert plan, bit-for-bit transparent).
  std::string scenario;

  static BenchEnv from_cli(const util::Cli& cli, double default_scale = 0.125) {
    BenchEnv env;
    env.scale = cli.get_double("scale", default_scale);
    if (env.scale <= 0.0) {
      std::cerr << "--scale must be positive\n";
      std::exit(2);
    }
    env.seed = cli.get_uint("seed", 42);
    env.csv = cli.get_bool("csv");
    // Parse --threads strictly: silently mapping garbage (or a negative)
    // to some worker count would still "work" but not mean what the user
    // asked for.
    const std::string threads_str = cli.get("threads", "0");
    std::size_t threads = 0;
    const char* const end = threads_str.data() + threads_str.size();
    const auto [parse_end, ec] =
        std::from_chars(threads_str.data(), end, threads);
    if (ec != std::errc{} || parse_end != end || threads > 4096) {
      std::cerr << "--threads must be an integer in [0, 4096] "
                   "(0 = hardware concurrency), got '"
                << threads_str << "'\n";
      std::exit(2);
    }
    env.threads = threads;
    env.engine = cli.get("engine", "");
    if (!env.engine.empty() && sim::find_engine(env.engine) == nullptr) {
      std::cerr << "unknown --engine '" << env.engine
                << "' (registered: " << sim::engine_names() << ")\n";
      std::exit(2);
    }
    env.scenario = cli.get("scenario", "");
    if (!env.scenario.empty() &&
        sim::find_scenario(env.scenario) == nullptr) {
      std::cerr << "unknown --scenario '" << env.scenario
                << "' (registered: " << sim::scenario_names() << ")\n";
      std::exit(2);
    }
    // Fault-shape flags shared by the robustness benches: reject garbage
    // up front, under the same exit-2 contract as --threads/--engine.
    checked_double_flag(cli, "loss", 0.0, 0.0, 1.0);
    checked_double_flag(cli, "offline-fraction", 0.0, 0.0, 1.0);
    checked_double_flag(cli, "jitter", 0.0, 0.0, 1e6);
    return env;
  }

  /// Content universe scaled in lockstep with the crawl so per-object
  /// replica counts stay comparable to the paper's.
  [[nodiscard]] trace::ContentModelParams model_params() const {
    trace::ContentModelParams p;
    auto scaled = [this](double full, double floor) {
      return static_cast<std::uint32_t>(std::max(floor, full * scale));
    };
    p.core_lexicon_size = scaled(60'000, 2'000);
    p.tail_lexicon_size = scaled(4'000'000, 50'000);
    p.catalog_songs = scaled(2'500'000, 25'000);
    p.artists = scaled(400'000, 5'000);
    p.seed = seed;
    return p;
  }

  [[nodiscard]] trace::GnutellaCrawlParams crawl_params() const {
    trace::GnutellaCrawlParams p = trace::GnutellaCrawlParams{}.scaled(scale);
    p.seed = seed;
    return p;
  }

  [[nodiscard]] trace::ItunesCrawlParams itunes_params() const {
    // The iTunes trace is small (239 clients); run it full-size by
    // default and only shrink below scale 1/4.
    trace::ItunesCrawlParams p =
        trace::ItunesCrawlParams{}.scaled(std::min(1.0, scale * 4.0));
    p.seed = seed + 1;
    return p;
  }

  [[nodiscard]] trace::QueryTraceParams query_params() const {
    trace::QueryTraceParams p = trace::QueryTraceParams{}.scaled(scale);
    p.seed = seed + 2;
    return p;
  }
};

inline void emit(const util::Table& table, const BenchEnv& env,
                 const std::string& title) {
  util::print_banner(std::cout, title);
  table.print(std::cout);
  if (env.csv) {
    std::cout << "\n--- csv ---\n";
    table.write_csv(std::cout);
  }
  std::cout.flush();
}

inline void print_header(const std::string& name, const BenchEnv& env,
                         const std::string& paper_context) {
  std::cout << "# " << name << "  (scale=" << env.scale
            << ", seed=" << env.seed << ")\n"
            << "# paper: " << paper_context << "\n";
}

/// Derived seed stream: sub-seed `component` of `base`, statistically
/// independent across components. Chained mixes rather than `base + k`:
/// with additive offsets, seed 42 component 1 and seed 43 component 0
/// are the SAME stream, silently correlating worlds the benches assume
/// independent.
[[nodiscard]] inline std::uint64_t seed_stream(std::uint64_t base,
                                               std::uint64_t component) {
  return util::mix64(util::mix64(base) ^ component);
}

// ---------------------------------------------------------------------------
// Shared world building for the engine benches.

/// Query workload: object-derived conjunctive queries (1-3 terms of a
/// real object), so every query has at least one satisfying object.
inline std::vector<std::vector<sim::TermId>> make_object_queries(
    const sim::PeerStore& store, std::size_t count, util::Rng& rng) {
  std::vector<std::vector<sim::TermId>> queries;
  std::size_t guard = 0;
  while (queries.size() < count && guard++ < 50 * count) {
    const auto peer = static_cast<overlay::NodeId>(rng.bounded(store.num_peers()));
    const std::size_t library = store.object_count(peer);
    if (library == 0) continue;
    const auto terms = store.object_terms(peer, rng.bounded(library));
    if (terms.empty()) continue;
    std::vector<sim::TermId> q;
    const std::size_t n =
        1 + rng.bounded(std::min<std::size_t>(3, terms.size()));
    for (std::size_t i = 0; i < n; ++i) {
      q.push_back(terms[rng.bounded(terms.size())]);
    }
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Steady-state liveness snapshot: a session-churn process whose steady
/// state hits the target offline fraction, advanced well past warm-up.
struct ChurnMask {
  std::vector<bool> online;
  double online_fraction = 0.0;
};

inline ChurnMask steady_state_churn_mask(std::size_t nodes,
                                         double offline_fraction,
                                         std::uint64_t seed) {
  overlay::ChurnParams cp;
  cp.mean_online_s = (1.0 - offline_fraction) * 3600.0;
  cp.mean_offline_s = offline_fraction * 3600.0;
  cp.seed = seed;
  overlay::ChurnProcess churn(nodes, cp);
  churn.advance(7200.0);
  return {churn.online(), churn.online_fraction()};
}

/// The content-search world the engine benches share: crawl-derived
/// PeerStore, random-regular overlay, Chord keyword index (+ optional
/// Gia network), and the object-derived query workload.
struct SearchWorld {
  sim::PeerStore store;
  overlay::Graph graph;
  std::unique_ptr<sim::ChordDht> dht;
  std::uint64_t publish_messages = 0;
  std::unique_ptr<sim::GiaNetwork> gia;  // null unless requested
  std::vector<std::vector<sim::TermId>> queries;

  /// Borrowing view for the registry's factories. Fill in the per-bench
  /// params (walk/gia_search/hybrid) on the returned value.
  [[nodiscard]] sim::EngineWorld engine_world() const {
    sim::EngineWorld w;
    w.graph = &graph;
    w.store = &store;
    w.dht = dht.get();
    w.gia = gia.get();
    return w;
  }
};

inline SearchWorld build_search_world(const BenchEnv& env, std::size_t nodes,
                                      std::size_t num_queries,
                                      bool with_gia = false) {
  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  SearchWorld world{sim::peer_store_from_crawl(crawl, nodes),
                    overlay::Graph(0), nullptr, 0, nullptr, {}};
  util::Rng rng(env.seed);
  world.graph = overlay::random_regular(nodes, 8, rng);
  world.dht = std::make_unique<sim::ChordDht>(nodes, env.seed + 4);
  world.publish_messages = world.dht->publish_store(world.store);
  if (with_gia) {
    overlay::GiaParams gp;
    gp.num_nodes = nodes;
    util::Rng gia_rng(env.seed + 3);
    world.gia = std::make_unique<sim::GiaNetwork>(
        overlay::gia_topology(gp, gia_rng), world.store);
  }
  util::Rng qrng(env.seed + 7);
  world.queries = make_object_queries(world.store, num_queries, qrng);
  return world;
}

/// Engines to sweep: the --engine selection when given, else every
/// registry engine constructible from `world`, in registry order (which
/// is also row order in the output tables).
struct NamedEngine {
  std::string_view name;
  std::unique_ptr<sim::SearchEngine> engine;
};

inline std::vector<NamedEngine> make_sweep_engines(
    const BenchEnv& env, const sim::EngineWorld& world) {
  std::vector<NamedEngine> engines;
  for (const sim::EngineEntry& entry : sim::engine_registry()) {
    if (!env.engine.empty() && env.engine != entry.name) continue;
    auto engine = entry.make(world);
    if (engine != nullptr) engines.push_back({entry.name, std::move(engine)});
  }
  if (engines.empty()) {
    std::cerr << "--engine '" << env.engine
              << "' cannot run in this bench (world lacks what it needs)\n";
    std::exit(2);
  }
  return engines;
}

// ---------------------------------------------------------------------------
// --scenario plumbing: any bench can run its engine sweep under a named
// failure scenario by compiling the plan once and decorating its sweep.

/// Compiles the env's --scenario against `graph`. The empty selection
/// yields the null plan — decorating with it is bit-for-bit transparent,
/// so benches may apply the result unconditionally.
inline sim::FaultPlan scenario_plan(const BenchEnv& env,
                                    const overlay::Graph& graph) {
  if (env.scenario.empty()) return {};
  const sim::Scenario* scenario = sim::find_scenario(env.scenario);
  return sim::FaultPlan::from_scenario(scenario->spec, graph,
                                       seed_stream(env.seed, 0x5CE9A));
}

/// An engine sweep decorated under one fault plan + recovery policy.
/// Owns the plan, the policy, and the inner engines; `engines` holds the
/// decorated drop-in replacements in the original order. Heap-allocated
/// by make_faulted_sweep so the decorators' plan/policy references stay
/// valid (moving the struct would relocate them).
struct FaultedSweep {
  sim::FaultPlan plan;
  sim::RecoveryPolicy policy;
  std::vector<NamedEngine> inner;
  std::vector<NamedEngine> engines;
};

inline std::unique_ptr<FaultedSweep> make_faulted_sweep(
    std::vector<NamedEngine> inner, sim::FaultPlan plan,
    const sim::RecoveryPolicy& policy) {
  auto sweep = std::make_unique<FaultedSweep>();
  sweep->plan = std::move(plan);
  sweep->policy = policy;
  sweep->inner = std::move(inner);
  for (NamedEngine& ne : sweep->inner) {
    sweep->engines.push_back(
        {ne.name, std::make_unique<sim::FaultInjectedEngine>(
                      *ne.engine, sweep->plan, sweep->policy)});
  }
  return sweep;
}

// ---------------------------------------------------------------------------
// TrialRunner adapter: one make_ctx for every registered engine.

/// Runs `trials` Monte-Carlo queries against `engine`: each trial builds
/// its Query via make_query(t, rng) and maps the SearchOutcome through
/// map_outcome. One EngineContext per worker shard; scratch state cannot
/// leak into results (epoch-stamped marks), so the aggregate stays
/// bit-identical for any --threads value.
template <typename MakeQuery, typename MapOutcome>
sim::TrialAggregate run_engine_sweep(const sim::TrialRunner& runner,
                                     std::size_t trials,
                                     const sim::SearchEngine& engine,
                                     MakeQuery&& make_query,
                                     MapOutcome&& map_outcome) {
  return runner.run(
      trials, [] { return sim::EngineContext{}; },
      [&](std::size_t t, util::Rng& trng, sim::EngineContext& ctx) {
        ctx.rng = &trng;
        const sim::Query query = make_query(t, trng);
        return map_outcome(engine.search(query, ctx));
      });
}

/// Default outcome mapping: success, messages, and the fault counters in
/// extra[0..2] (dropped, retries, route-around hops).
template <typename MakeQuery>
sim::TrialAggregate run_engine_sweep(const sim::TrialRunner& runner,
                                     std::size_t trials,
                                     const sim::SearchEngine& engine,
                                     MakeQuery&& make_query) {
  return run_engine_sweep(runner, trials, engine,
                          std::forward<MakeQuery>(make_query),
                          [](const sim::SearchOutcome& r) {
                            sim::TrialOutcome out;
                            out.success = r.success;
                            out.messages = r.messages;
                            out.extra[0] = r.fault.dropped;
                            out.extra[1] = r.fault.retries;
                            out.extra[2] = r.fault.route_around_hops;
                            return out;
                          });
}

// ---------------------------------------------------------------------------
// Fig 8-style topology + replication-placement sweeps.

/// --topology two-tier|flat|ba (exits 2 otherwise).
inline overlay::TwoTierTopology build_bench_topology(const std::string& name,
                                                     std::size_t nodes,
                                                     util::Rng& rng) {
  overlay::TwoTierTopology topo{overlay::Graph(0), {}};
  if (name == "two-tier") {
    overlay::TwoTierParams tp;
    tp.num_nodes = nodes;
    topo = overlay::gnutella_two_tier(tp, rng);
  } else if (name == "flat") {
    topo.graph = overlay::random_regular(nodes, 9, rng);
    topo.is_ultrapeer.assign(nodes, true);
  } else if (name == "ba") {
    topo.graph = overlay::barabasi_albert(nodes, 5, rng);
    topo.is_ultrapeer.assign(nodes, true);
  } else {
    std::cerr << "unknown --topology (two-tier|flat|ba)\n";
    std::exit(2);
  }
  return topo;
}

/// Fig 8's replication ladder: uniform {2,5,10,20,40}-copy placements
/// (0.005%..0.1% of a 40k network) plus the crawl-derived Zipf one.
inline constexpr std::size_t kUniformCopyLevels[] = {2, 5, 10, 20, 40};

struct ReplicationPlacements {
  sim::Placement zipf;
  std::vector<sim::Placement> uniform;  // one per kUniformCopyLevels entry
};

inline ReplicationPlacements build_replication_placements(
    const BenchEnv& env, double crawl_scale, std::size_t nodes,
    std::size_t objects = 3'000) {
  BenchEnv crawl_env = env;
  crawl_env.scale = crawl_scale;
  const trace::ContentModel model(crawl_env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, crawl_env.crawl_params());
  const auto crawl_counts = crawl.object_replica_counts();

  util::Rng place_rng(env.seed + 1);
  ReplicationPlacements out{
      sim::place_by_counts(
          sim::sample_replica_counts(crawl_counts, objects, place_rng), nodes,
          place_rng),
      {}};
  for (std::size_t copies : kUniformCopyLevels) {
    out.uniform.push_back(
        sim::place_uniform(objects / 4, copies, nodes, place_rng));
  }
  return out;
}

}  // namespace qcp2p::bench
