// Shared scaffolding for the figure/experiment harnesses: every binary
// accepts --scale (fraction of the paper's full experiment size; 1.0
// reproduces the Apr'07 crawl volume and needs several GB of RAM),
// --seed, --csv (append machine-readable rows to stdout), and --threads
// (Monte-Carlo worker count; 0 = hardware concurrency). Trial results
// are bit-identical for any --threads value: see sim::TrialRunner.
#pragma once

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "src/trace/content_model.hpp"
#include "src/trace/gnutella.hpp"
#include "src/trace/itunes.hpp"
#include "src/trace/query_trace.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace qcp2p::bench {

struct BenchEnv {
  double scale = 0.125;
  std::uint64_t seed = 42;
  bool csv = false;
  /// Monte-Carlo trial workers (0 = hardware concurrency).
  std::size_t threads = 0;

  static BenchEnv from_cli(const util::Cli& cli, double default_scale = 0.125) {
    BenchEnv env;
    env.scale = cli.get_double("scale", default_scale);
    if (env.scale <= 0.0) {
      std::cerr << "--scale must be positive\n";
      std::exit(2);
    }
    env.seed = cli.get_uint("seed", 42);
    env.csv = cli.get_bool("csv");
    env.threads = static_cast<std::size_t>(cli.get_uint("threads", 0));
    return env;
  }

  /// Content universe scaled in lockstep with the crawl so per-object
  /// replica counts stay comparable to the paper's.
  [[nodiscard]] trace::ContentModelParams model_params() const {
    trace::ContentModelParams p;
    auto scaled = [this](double full, double floor) {
      return static_cast<std::uint32_t>(std::max(floor, full * scale));
    };
    p.core_lexicon_size = scaled(60'000, 2'000);
    p.tail_lexicon_size = scaled(4'000'000, 50'000);
    p.catalog_songs = scaled(2'500'000, 25'000);
    p.artists = scaled(400'000, 5'000);
    p.seed = seed;
    return p;
  }

  [[nodiscard]] trace::GnutellaCrawlParams crawl_params() const {
    trace::GnutellaCrawlParams p = trace::GnutellaCrawlParams{}.scaled(scale);
    p.seed = seed;
    return p;
  }

  [[nodiscard]] trace::ItunesCrawlParams itunes_params() const {
    // The iTunes trace is small (239 clients); run it full-size by
    // default and only shrink below scale 1/4.
    trace::ItunesCrawlParams p =
        trace::ItunesCrawlParams{}.scaled(std::min(1.0, scale * 4.0));
    p.seed = seed + 1;
    return p;
  }

  [[nodiscard]] trace::QueryTraceParams query_params() const {
    trace::QueryTraceParams p = trace::QueryTraceParams{}.scaled(scale);
    p.seed = seed + 2;
    return p;
  }
};

inline void emit(const util::Table& table, const BenchEnv& env,
                 const std::string& title) {
  util::print_banner(std::cout, title);
  table.print(std::cout);
  if (env.csv) {
    std::cout << "\n--- csv ---\n";
    table.write_csv(std::cout);
  }
  std::cout.flush();
}

inline void print_header(const std::string& name, const BenchEnv& env,
                         const std::string& paper_context) {
  std::cout << "# " << name << "  (scale=" << env.scale
            << ", seed=" << env.seed << ")\n"
            << "# paper: " << paper_context << "\n";
}

}  // namespace qcp2p::bench
