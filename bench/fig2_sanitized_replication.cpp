// Figure 2: object replication after sanitizing names (lowercase, strip
// special characters). Paper: uniques drop 8.1M -> 7.9M, singletons
// 70.5% -> 69.8%, still 99.4% under the 0.1% replication cut — i.e.
// sanitization barely helps.
#include "bench/bench_common.hpp"

#include "src/analysis/replication.hpp"
#include "src/text/tokenizer.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli);
  bench::print_header(
      "fig2_sanitized_replication", env,
      "Fig 2: sanitized names merge 8.1M -> 7.9M uniques; 69.8% singleton; "
      "99.4% on <= 37 peers");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot snap =
      generate_gnutella_crawl(model, env.crawl_params());

  analysis::NameReplicaCounter raw, sanitized;
  for (std::uint32_t p = 0; p < snap.num_peers(); ++p) {
    for (trace::ObjectKey k : snap.peer_objects(p)) {
      const std::string name = snap.object_name(k);
      raw.add(p, name);
      sanitized.add(p, text::sanitize_filename(name));
    }
  }
  const auto raw_counts = raw.counts();
  const auto san_counts = sanitized.counts();
  const auto s = analysis::summarize_replication(san_counts, snap.num_peers());

  const double merge = 1.0 - static_cast<double>(san_counts.size()) /
                                 static_cast<double>(raw_counts.size());
  util::Table t({"metric", "paper (full scale)", "measured"});
  t.add_row();
  t.cell("unique raw names").cell("8.1M").cell(
      static_cast<std::uint64_t>(raw_counts.size()));
  t.add_row();
  t.cell("unique sanitized names").cell("7.9M").cell(s.unique_items);
  t.add_row();
  t.cell("merged by sanitization").cell("~2.5%").percent(merge);
  t.add_row();
  t.cell("singleton (sanitized)").cell("69.8%").percent(s.singleton_fraction);
  t.add_row();
  t.cell("on <= 37 peers (sanitized)").cell("99.4%").percent(
      util::fraction_at_or_below(san_counts, 37));
  t.add_row();
  t.cell("singleton (raw, Fig 1)").cell("70.5%").percent(
      util::singleton_fraction(raw_counts));
  bench::emit(t, env, "Fig 2 — sanitized-name replication");
  return 0;
}
