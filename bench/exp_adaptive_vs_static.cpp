// Adaptive vs static query-centric advertisement (the paper's Section V
// argument made operational): the same synopsis-guided routing run over
// (a) a network whose per-peer term budgets keep tracking the observed
// query stream and (b) one warmed once on the opening epoch and then
// frozen, alongside the registry baselines (flood, qrp, hybrid,
// dht-only) — under three query mixes:
//
//   stable       the epoch-0 popularity ranking holds for the whole run
//   drifting     the popular set rotates every epoch
//   flash-crowd  a previously-cold query erupts to half the traffic
//
// Measurement discipline: each epoch is measured BEFORE the adaptive
// network observes it (its state reflects history up to the previous
// epoch — a deployed system's one-epoch lag), then the adaptive network
// observes the epoch and re-ranks; the static network never re-ranks
// after warm-up. Re-advertisement counts and bytes are charged so the
// adaptation traffic is visible next to the search savings. All rows are
// byte-identical for any --threads value (sim::TrialRunner).
#include "bench/bench_common.hpp"

#include <array>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/adaptive.hpp"
#include "src/sim/qrp.hpp"
#include "src/util/zipf.hpp"

using namespace qcp2p;

namespace {

struct MixDef {
  std::size_t index;
  std::string_view name;
  bool drift;
  bool flash;
};

constexpr MixDef kMixes[] = {
    {0, "stable", false, false},
    {1, "drifting", true, false},
    {2, "flash-crowd", false, true},
};

// Niche queries are where query-centric adaptation can matter at all:
// single-term queries over terms held by only a few peers, none of whom
// would advertise the term under the cold content-frequency ranking (it
// is locally rare on every holder). Popularity is the ONLY signal that
// can promote such a term into a synopsis. Terms already appearing in
// the Zipf pool are excluded so warm-up traffic cannot pre-promote them.
std::vector<std::vector<sim::TermId>> find_niche_queries(
    const sim::PeerStore& store, const sim::AdaptiveOverlayNetwork& cold,
    const std::vector<std::vector<sim::TermId>>& pool_queries,
    std::size_t limit) {
  std::unordered_set<sim::TermId> pool_terms;
  for (const auto& q : pool_queries) pool_terms.insert(q.begin(), q.end());
  std::unordered_map<sim::TermId, std::vector<sim::NodeId>> holders;
  for (sim::NodeId v = 0; v < store.num_peers(); ++v) {
    for (const sim::TermId t : store.peer_terms(v)) holders[t].push_back(v);
  }
  std::vector<sim::TermId> candidates;
  for (const auto& [t, hs] : holders) {
    if (hs.empty() || hs.size() > 6 || pool_terms.count(t) != 0) continue;
    bool advertised = false;
    for (const sim::NodeId h : hs) {
      if (cold.synopsis(h).maybe_contains(t)) {
        advertised = true;
        break;
      }
    }
    if (!advertised) candidates.push_back(t);
  }
  std::sort(candidates.begin(), candidates.end());  // deterministic order
  if (candidates.size() > limit) candidates.resize(limit);
  std::vector<std::vector<sim::TermId>> out;
  out.reserve(candidates.size());
  for (const sim::TermId t : candidates) out.push_back({t});
  return out;
}

// Epoch workload: per-trial indices into pool+niche queries (niche query
// i has index pool+i). Pregenerated serially so the workload is
// independent of --threads.
//
//   stable       Zipf over the pool, same ranking every epoch
//   drifting     60% of traffic on a 24-wide niche head that slides by 8
//                per epoch (consecutive epochs share 2/3 of the head)
//   flash-crowd  from epoch 1 on, half of all traffic is one niche query
//                that warm-up never saw
std::vector<std::size_t> make_workload(const MixDef& mix, std::size_t epoch,
                                       std::size_t trials, std::size_t pool,
                                       std::size_t niche, std::uint64_t seed) {
  util::Rng rng(
      bench::seed_stream(seed, 1'000 * (mix.index + 1) + epoch));
  const util::ZipfSampler zipf(pool, 1.0);
  std::vector<std::size_t> out;
  out.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    if (mix.flash && epoch >= 1 && niche > 0 && rng.chance(0.5)) {
      out.push_back(pool);  // the burst query
    } else if (mix.drift && niche > 0 && rng.chance(0.6)) {
      const std::size_t head = std::min<std::size_t>(24, niche);
      out.push_back(pool + (epoch * 8 + rng.bounded(head)) % niche);
    } else {
      out.push_back(zipf(rng) - 1);
    }
  }
  return out;
}

// Timing folded into integer ns (TrialAggregate sums integers so output
// stays byte-identical across --threads): extra[0]=first-hit ns,
// extra[1]=trials with a hit, extra[2]=guided, extra[3]=fallback.
sim::TrialOutcome map_adaptive(const sim::SearchOutcome& r) {
  sim::TrialOutcome out;
  out.success = r.success;
  out.messages = r.messages;
  out.peers_probed = r.peers_probed;
  if (r.timing.has_value() && r.timing->has_first_hit()) {
    out.extra[0] =
        static_cast<std::uint64_t>(r.timing->first_hit_s * 1e9 + 0.5);
    out.extra[1] = 1;
  }
  if (const auto* extras = sim::extras_as<sim::AdaptiveExtras>(r)) {
    out.extra[2] = extras->guided_forwards;
    out.extra[3] = extras->fallback_forwards;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto trials_per_epoch = cli.get_uint("queries", 200);
  const auto epochs = cli.get_uint("epochs", 5);  // epoch 0 = warm-up
  const auto ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 4));
  bench::print_header(
      "exp_adaptive_vs_static", env,
      "Query-centric advertisement that keeps adapting vs one frozen at "
      "warm-up, under stable / drifting / flash-crowd query mixes");

  // Shared world: crawl-derived content on a two-tier overlay (leaves
  // never relay), so qrp can join the sweep, plus the Chord index for
  // hybrid/dht-only.
  bench::SearchWorld world =
      bench::build_search_world(env, nodes, 4 * trials_per_epoch);
  util::Rng topo_rng(bench::seed_stream(env.seed, 20));
  const overlay::TwoTierTopology topo =
      bench::build_bench_topology("two-tier", nodes, topo_rng);
  const sim::QrpNetwork qrp(topo, world.store);

  sim::EngineWorld ew;
  ew.graph = &topo.graph;
  ew.store = &world.store;
  ew.forwards = &topo.is_ultrapeer;
  ew.dht = world.dht.get();
  ew.qrp = &qrp;
  ew.timing.seed = bench::seed_stream(env.seed, 11);

  sim::AdaptiveParams aparams;
  aparams.synopsis.term_budget = cli.get_uint("budget", 24);
  // A wider blind fallback keeps the frontier alive on never-advertised
  // queries: guidance can only convert holder adjacency the frontier
  // actually produces.
  aparams.fallback_fanout = 4;

  // Combined query list: the Zipf pool, then the niche queries the drift
  // and flash mixes promote. The cold probe network exposes exactly the
  // advertisement state both contenders start from.
  const std::size_t pool = world.queries.size();
  std::vector<std::vector<sim::TermId>> queries = world.queries;
  {
    const sim::AdaptiveOverlayNetwork cold_probe(topo.graph, world.store,
                                                 aparams, &topo.is_ultrapeer);
    auto niche_queries =
        find_niche_queries(world.store, cold_probe, world.queries, 64);
    std::cout << "# niche queries: " << niche_queries.size()
              << " (few-holder terms no holder advertises cold)\n";
    for (auto& q : niche_queries) queries.push_back(std::move(q));
  }
  const std::size_t niche = queries.size() - pool;
  const sim::TrialRunner runner({env.threads, env.seed});
  util::Table t({"mix", "engine", "success", "msgs/query", "first hit (s)",
                 "guided", "fallback", "readv", "adv KiB"});

  for (const MixDef& mix : kMixes) {
    // Fresh networks per mix; both warm on epoch 0, then the static one
    // freezes while the adaptive one keeps observing.
    sim::AdaptiveOverlayNetwork adaptive_net(topo.graph, world.store, aparams,
                                             &topo.is_ultrapeer);
    sim::AdaptiveOverlayNetwork static_net(topo.graph, world.store, aparams,
                                           &topo.is_ultrapeer);
    const auto warmup =
        make_workload(mix, 0, trials_per_epoch, pool, niche, env.seed);
    for (const std::size_t idx : warmup) {
      adaptive_net.observe_query(queries[idx]);
      static_net.observe_query(queries[idx]);
    }
    (void)adaptive_net.refresh_synopses();
    (void)static_net.refresh_synopses();
    const std::uint64_t readv_base = adaptive_net.readvertisements();
    const std::uint64_t bytes_base = adaptive_net.advertisement_bytes();

    std::vector<bench::NamedEngine> engines;
    engines.push_back(
        {"adaptive", sim::make_adaptive_engine(adaptive_net, ew.timing)});
    engines.push_back(
        {"static-qc", sim::make_adaptive_engine(static_net, ew.timing)});
    for (const std::string_view name : {"flood", "qrp", "hybrid", "dht-only"}) {
      if (!env.engine.empty() && env.engine != name) continue;
      auto engine = sim::make_engine(name, ew);
      if (engine != nullptr) {
        engines.push_back({sim::find_engine(name)->name, std::move(engine)});
      }
    }

    std::vector<sim::TrialAggregate> totals(engines.size());
    for (std::size_t epoch = 1; epoch < epochs; ++epoch) {
      const auto workload =
          make_workload(mix, epoch, trials_per_epoch, pool, niche, env.seed);
      // Measure with the state adaptation produced from PRIOR epochs.
      for (std::size_t i = 0; i < engines.size(); ++i) {
        const sim::TrialAggregate agg = bench::run_engine_sweep(
            runner, trials_per_epoch, *engines[i].engine,
            [&](std::size_t trial, util::Rng& trng) {
              sim::Query q;
              q.source = static_cast<sim::NodeId>(trng.bounded(nodes));
              q.terms = queries[workload[trial]];
              q.ttl = ttl;
              return q;
            },
            &map_adaptive);
        totals[i].merge(agg);
      }
      // Only now does the adaptive network learn this epoch.
      for (const std::size_t idx : workload) {
        adaptive_net.observe_query(queries[idx]);
      }
      (void)adaptive_net.refresh_synopses();
    }

    for (std::size_t i = 0; i < engines.size(); ++i) {
      const sim::TrialAggregate& agg = totals[i];
      const bool is_adaptive = engines[i].name == "adaptive";
      const std::uint64_t readv =
          is_adaptive ? adaptive_net.readvertisements() - readv_base : 0;
      const std::uint64_t bytes =
          is_adaptive ? adaptive_net.advertisement_bytes() - bytes_base : 0;
      t.add_row();
      t.cell(std::string(mix.name))
          .cell(std::string(engines[i].name))
          .percent(agg.success_rate(), 1)
          .cell(agg.mean_messages(), 1)
          .cell(agg.extra[1] != 0 ? static_cast<double>(agg.extra[0]) /
                                        static_cast<double>(agg.extra[1]) / 1e9
                                  : 0.0,
                3)
          .cell(agg.mean_extra(2), 1)
          .cell(agg.mean_extra(3), 1)
          .cell(readv)
          .cell(static_cast<double>(bytes) / 1024.0, 1);
    }
  }

  bench::emit(t, env,
              "Adaptive vs frozen query-centric advertisement (two-tier "
              "overlay, one-epoch adaptation lag)");
  return 0;
}
