// Table T1 (the paper's in-text statistics, both traces side by side):
// peers/clients, object totals and uniques, singleton fractions, the
// 0.1%-replication cut, the Loo et al. >= 20-peers cut, and the Zipf
// exponents — the numbers every other experiment builds on.
#include "bench/bench_common.hpp"

#include "src/analysis/replication.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli);
  bench::print_header("tab1_trace_summary", env,
                      "Sec II-III in-text statistics for both traces");

  const trace::ContentModel model(env.model_params());

  {
    const trace::CrawlSnapshot snap =
        generate_gnutella_crawl(model, env.crawl_params());
    const auto counts = snap.object_replica_counts();
    const auto s = analysis::summarize_replication(counts, snap.num_peers());
    const auto terms = snap.term_peer_counts();

    util::Table t({"Gnutella (Apr'07)", "paper", "measured"});
    t.add_row();
    t.cell("peers").cell("37,572").cell(
        static_cast<std::uint64_t>(snap.num_peers()));
    t.add_row();
    t.cell("objects").cell("12.1M").cell(snap.total_objects());
    t.add_row();
    t.cell("unique objects").cell("8.1M").cell(s.unique_items);
    t.add_row();
    t.cell("singleton objects").cell("70.5%").percent(s.singleton_fraction);
    t.add_row();
    t.cell("objects on <= 37 peers").cell("99.5%").percent(
        util::fraction_at_or_below(counts, 37));
    t.add_row();
    t.cell("objects on >= 20 peers (Loo rare cut)").cell("< 4%").percent(
        s.fraction_20_or_more);
    t.add_row();
    t.cell("unique terms").cell("1.22M").cell(
        static_cast<std::uint64_t>(terms.size()));
    t.add_row();
    t.cell("singleton terms").cell("71.3%").percent(
        util::singleton_fraction(terms));
    t.add_row();
    t.cell("terms on <= 37 peers").cell("98.3%").percent(
        util::fraction_at_or_below(terms, 37));
    bench::emit(t, env, "T1a — Gnutella crawl summary");
  }

  {
    const trace::ItunesSnapshot snap =
        generate_itunes_crawl(model, env.itunes_params());
    const auto songs = snap.song_client_counts();
    util::Table t({"iTunes (campus)", "paper", "measured"});
    t.add_row();
    t.cell("clients").cell("239").cell(
        static_cast<std::uint64_t>(snap.num_clients()));
    t.add_row();
    t.cell("tracks").cell("533,768").cell(snap.total_tracks());
    t.add_row();
    t.cell("unique songs").cell("117,068").cell(
        static_cast<std::uint64_t>(songs.size()));
    t.add_row();
    t.cell("singleton songs").cell("64%").percent(
        util::singleton_fraction(songs));
    t.add_row();
    t.cell("genres").cell("1,452").cell(
        static_cast<std::uint64_t>(snap.genre_client_counts().size()));
    t.add_row();
    t.cell("albums").cell("32,353").cell(
        static_cast<std::uint64_t>(snap.album_client_counts().size()));
    t.add_row();
    t.cell("artists").cell("25,309").cell(
        static_cast<std::uint64_t>(snap.artist_client_counts().size()));
    bench::emit(t, env, "T1b — iTunes trace summary");
  }
  return 0;
}
