// Ranked search sweep: budget-bounded top-k vs the exhaustive oracle
// (DESIGN.md section 11).
//
// For each (placement x engine x k) cell the harness replays the same
// object-derived conjunctive queries twice:
//   * oracle: an exhaustive set-mode flood (k = 0) at the SAME ttl,
//     scored post-hoc with the store's static scores — the best top-k
//     any engine could have returned under this liveness;
//   * ranked: the engine with Query::k set, whose k-th-best-stability
//     early termination stops paying for rounds that no longer improve
//     the top-k (smaller k => earlier stop => fewer messages).
// The comparison isolates the ranked contract's message savings (same
// reach, same content, same queries) and prices them in recall@k.
//
// Placements: the crawl-derived Zipf replica distribution vs the same
// objects re-placed on a fixed number of uniform-random peers — the
// paper's recurring uniform-evaluation-regime contrast. Early
// termination feeds on replica skew (popular objects saturate the
// frontier early), so the Zipf column is where the savings live.
//
// All aggregates are integer sums (sim::TrialRunner), so stdout is
// byte-identical for any --threads value.
#include "bench/bench_common.hpp"

#include <unordered_map>
#include <unordered_set>

#include "src/sim/trial_runner.hpp"

using namespace qcp2p;

namespace {

/// The same objects as `zipf`, each re-placed on exactly `copies`
/// uniform-random peers (the related-work evaluation regime).
sim::PeerStore uniform_replacement(const sim::PeerStore& zipf,
                                   std::size_t nodes, std::size_t copies,
                                   std::uint64_t seed) {
  sim::PeerStore store(nodes);
  util::Rng rng(util::mix64(seed ^ 0x0B1ECE5ULL));
  std::unordered_set<std::uint64_t> seen;
  std::vector<overlay::NodeId> holders;
  for (overlay::NodeId p = 0; p < zipf.num_peers(); ++p) {
    const std::size_t count = zipf.object_count(p);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t id = zipf.object_id(p, i);
      if (!seen.insert(id).second) continue;
      const auto terms = zipf.object_terms(p, i);
      holders.clear();
      while (holders.size() < std::min(copies, nodes)) {
        const auto v = static_cast<overlay::NodeId>(rng.bounded(nodes));
        if (std::find(holders.begin(), holders.end(), v) == holders.end()) {
          holders.push_back(v);
        }
      }
      for (overlay::NodeId v : holders) {
        store.add_object(v, id, {terms.begin(), terms.end()});
      }
    }
  }
  store.finalize();
  return store;
}

/// id -> static score, from any holder (scores are a property of the
/// object — term rarity x replica count — not of the replica).
std::unordered_map<std::uint64_t, float> score_map(
    const sim::PeerStore& store) {
  std::unordered_map<std::uint64_t, float> scores;
  for (overlay::NodeId p = 0; p < store.num_peers(); ++p) {
    const std::size_t count = store.object_count(p);
    for (std::size_t i = 0; i < count; ++i) {
      scores.try_emplace(store.object_id(p, i), store.object_score(p, i));
    }
  }
  return scores;
}

/// Exhaustive set-mode answer for one query: the ideal ranking prefix
/// (rank order, up to max_k ids) and the messages the full flood paid.
struct Oracle {
  std::vector<std::uint64_t> ranked_ids;
  std::uint64_t messages = 0;
  std::size_t full_size = 0;
};

std::vector<Oracle> build_oracles(
    const sim::SearchEngine& flood, const sim::TrialRunner& runner,
    const std::vector<std::vector<sim::TermId>>& queries,
    const std::unordered_map<std::uint64_t, float>& scores, std::size_t nodes,
    std::uint32_t ttl, std::uint32_t max_k) {
  std::vector<Oracle> oracles(queries.size());
  sim::EngineContext ctx;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    // Same rng stream as ranked trial q, so the FIRST draw — the query
    // source — is identical and the message comparison is paired.
    util::Rng rng = runner.trial_rng(q);
    ctx.rng = &rng;
    sim::Query query;
    query.source = static_cast<overlay::NodeId>(rng.bounded(nodes));
    query.terms = queries[q];
    query.ttl = ttl;
    query.trial = q;
    const sim::SearchOutcome out = flood.search(query, ctx);
    Oracle& o = oracles[q];
    o.messages = out.messages;
    o.full_size = out.hits.size();
    std::vector<sim::ScoredMatch> ranked;
    ranked.reserve(out.hits.size());
    for (std::uint64_t id : out.hits) {
      const auto it = scores.find(id);
      ranked.push_back({id, it != scores.end() ? it->second : 0.0f});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const sim::ScoredMatch& a, const sim::ScoredMatch& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.object < b.object;
              });
    if (ranked.size() > max_k) ranked.resize(max_k);
    for (const sim::ScoredMatch& m : ranked) o.ranked_ids.push_back(m.object);
  }
  return oracles;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.05);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 300);
  // Saturating by default: at degree 8 the frontier covers 2k nodes in
  // 5 hops, so oracle and ranked runs share full reach and the message
  // gap is the early-termination savings alone.
  const auto ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 5));
  const auto copies = cli.get_uint("copies", 4);
  const std::string k_raw = cli.get("k", "1,10");
  std::vector<std::uint32_t> k_levels;
  {
    std::size_t pos = 0;
    while (pos <= k_raw.size()) {
      const std::size_t comma = std::min(k_raw.find(',', pos), k_raw.size());
      const std::string item = k_raw.substr(pos, comma - pos);
      std::uint32_t value = 0;
      const char* const end = item.data() + item.size();
      const auto [parse_end, ec] = std::from_chars(item.data(), end, value);
      if (item.empty() || ec != std::errc{} || parse_end != end ||
          value == 0) {
        std::cerr << "--k must be a comma list of positive integers, got '"
                  << k_raw << "'\n";
        return 2;
      }
      k_levels.push_back(value);
      pos = comma + 1;
    }
  }
  const std::uint32_t max_k =
      *std::max_element(k_levels.begin(), k_levels.end());

  bench::print_header(
      "exp_topk", env,
      "budget-bounded ranked search: messages saved vs recall@k against "
      "the exhaustive scored flood oracle");

  bench::SearchWorld zipf = bench::build_search_world(env, nodes, num_queries);

  // The uniform world reuses the Zipf world's graph and objects; only
  // the placement (and therefore the scores' replica term) changes.
  bench::SearchWorld uniform{
      uniform_replacement(zipf.store, nodes, copies, env.seed),
      zipf.graph, nullptr, 0, nullptr, zipf.queries};
  uniform.dht = std::make_unique<sim::ChordDht>(nodes, env.seed + 4);
  uniform.publish_messages = uniform.dht->publish_store(uniform.store);

  util::Table table({"placement", "engine", "k", "success", "msgs/q",
                     "oracle msgs/q", "msg saved", "recall@k"});

  struct Cell {
    const char* placement;
    bench::SearchWorld* world;
  };
  for (const Cell cell : {Cell{"zipf", &zipf}, Cell{"uniform", &uniform}}) {
    const sim::EngineWorld ew = cell.world->engine_world();
    const auto scores = score_map(cell.world->store);
    const auto oracle_flood = sim::make_engine("flood", ew);
    const sim::TrialRunner runner({env.threads, env.seed});
    const std::vector<Oracle> oracles =
        build_oracles(*oracle_flood, runner, cell.world->queries, scores,
                      nodes, ttl, max_k);
    std::uint64_t oracle_messages = 0;
    for (const Oracle& o : oracles) oracle_messages += o.messages;
    const double oracle_per_q =
        oracles.empty() ? 0.0
                        : static_cast<double>(oracle_messages) /
                              static_cast<double>(oracles.size());

    const std::vector<bench::NamedEngine> engines =
        bench::make_sweep_engines(env, ew);
    for (const bench::NamedEngine& ne : engines) {
      for (const std::uint32_t k : k_levels) {
        const sim::TrialAggregate agg = runner.run(
            cell.world->queries.size(),
            [] { return sim::EngineContext{}; },
            [&, k](std::size_t t, util::Rng& trng, sim::EngineContext& ctx) {
              ctx.rng = &trng;
              sim::Query query;
              query.source =
                  static_cast<overlay::NodeId>(trng.bounded(nodes));
              query.terms = cell.world->queries[t];
              query.ttl = ttl;
              query.k = k;
              query.trial = t;
              const sim::SearchOutcome r = ne.engine->search(query, ctx);
              sim::TrialOutcome out;
              out.success = r.success;
              out.messages = r.messages;
              const Oracle& o = oracles[t];
              std::vector<std::uint64_t> want(
                  o.ranked_ids.begin(),
                  o.ranked_ids.begin() +
                      static_cast<std::ptrdiff_t>(
                          std::min<std::size_t>(k, o.ranked_ids.size())));
              std::sort(want.begin(), want.end());
              std::size_t overlap = 0;
              for (const sim::ScoredMatch& m : r.top_k) {
                if (std::binary_search(want.begin(), want.end(), m.object)) {
                  ++overlap;
                }
              }
              out.extra[0] = overlap;
              out.extra[1] = std::min<std::size_t>(k, o.full_size);
              return out;
            });
        table.add_row();
        table.cell(cell.placement);
        table.cell(std::string(ne.name));
        table.cell(static_cast<std::uint64_t>(k));
        table.percent(agg.success_rate(), 1);
        table.cell(agg.mean_messages(), 1);
        table.cell(oracle_per_q, 1);
        table.percent(oracle_messages == 0
                          ? 0.0
                          : 1.0 - static_cast<double>(agg.messages) /
                                      static_cast<double>(oracle_messages),
                      1);
        table.percent(agg.extra[1] == 0
                          ? 0.0
                          : static_cast<double>(agg.extra[0]) /
                                static_cast<double>(agg.extra[1]),
                      2);
      }
    }
  }

  bench::emit(table,
              env,
              "top-k vs exhaustive oracle (" + std::to_string(nodes) +
                  " nodes, " + std::to_string(num_queries) +
                  " queries, ttl " + std::to_string(ttl) + ")");
  return 0;
}
