#!/usr/bin/env bash
# Hot-path perf-regression harness: runs the micro_hotpaths regression
# set plus three representative experiment binaries, and writes a single
# BENCH_hotpaths.json ({"benchmarks": ns/op, "experiments_wall_s": s}).
#
# Usage: bench/run_hotpaths.sh [build-dir] [out.json] [full|smoke]
#   full  (default) — benchmark-chosen iteration counts + exp wall times
#   smoke           — short min_time, tiny exp sizes; CI regression job
#
# Compare two snapshots with:
#   python3 - BENCH_A.json BENCH_B.json  (see EXPERIMENTS.md "Performance")
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_hotpaths.json}
MODE=${3:-full}

FILTER='BM_FloodTtl|BM_PeerStoreMatch|BM_PeerStoreMayMatch|BM_TwoTierBuild|BM_FloodSearch|BM_DesEventLoop|BM_WorldBuild|BM_SnapshotLoad|BM_GraphFreezeThaw'
MICRO_ARGS=("--benchmark_filter=${FILTER}")
if [[ "${MODE}" == "smoke" ]]; then
  MICRO_ARGS+=("--benchmark_min_time=0.05")
else
  # Repetitions + min-of-reps (see HotpathsReporter) de-noise shared
  # runners: interference only ever adds time, so the min is the signal.
  MICRO_ARGS+=("--benchmark_repetitions=3")
fi

TMP_JSON="${OUT}.micro.tmp"
"${BUILD_DIR}/bench/micro_hotpaths" "${MICRO_ARGS[@]}" \
  "--hotpaths-json=${TMP_JSON}"

# Wall-clock the experiment pipelines end-to-end (topology build + crawl
# synthesis + Monte-Carlo trials) at fixed sizes so the numbers are
# comparable across commits. --threads 1 keeps them scheduler-independent.
if [[ "${MODE}" == "smoke" ]]; then
  FIG8_ARGS=(--nodes 4000 --trials 100 --crawl-scale 0.02 --threads 1)
  HYBRID_ARGS=(--scale 0.02 --nodes 1000 --queries 100 --threads 1)
  FAULT_ARGS=(--scale 0.02 --nodes 1000 --queries 60 --threads 1)
  TOPK_ARGS=(--scale 0.01 --nodes 500 --queries 60 --k 10 --threads 1)
else
  FIG8_ARGS=(--nodes 10000 --trials 400 --crawl-scale 0.02 --threads 1)
  HYBRID_ARGS=(--scale 0.02 --threads 1)
  FAULT_ARGS=(--scale 0.02 --threads 1)
  TOPK_ARGS=(--scale 0.02 --nodes 2000 --queries 300 --k 10 --threads 1)
fi

WALL_ROWS=""
time_exp() {
  local name=$1
  shift
  local start end
  start=$(date +%s.%N)
  "${BUILD_DIR}/bench/${name}" "$@" >/dev/null
  end=$(date +%s.%N)
  WALL_ROWS+="${name} $(awk -v a="${start}" -v b="${end}" 'BEGIN{printf "%.3f", b-a}')"$'\n'
}

time_exp fig8_flood_success "${FIG8_ARGS[@]}"
time_exp exp_hybrid_vs_dht "${HYBRID_ARGS[@]}"
time_exp exp_fault_tolerance "${FAULT_ARGS[@]}"
time_exp exp_topk "${TOPK_ARGS[@]}"

WALL_ROWS="${WALL_ROWS}" TMP_JSON="${TMP_JSON}" OUT="${OUT}" python3 - <<'EOF'
import json, os

with open(os.environ["TMP_JSON"]) as f:
    report = json.load(f)
report["experiments_wall_s"] = {}
for row in os.environ["WALL_ROWS"].strip().splitlines():
    name, seconds = row.split()
    report["experiments_wall_s"][name] = float(seconds)
with open(os.environ["OUT"], "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
EOF
rm -f "${TMP_JSON}"
echo "wrote ${OUT}"
