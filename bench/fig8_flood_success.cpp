// Figure 8 + Section V: flood success vs TTL on a 40,000-node Gnutella
// network, with objects placed either uniformly at random (2, 5, 10, 20,
// 40 copies = 0.005%..0.1% replication) or with replica counts drawn
// from the measured Zipf distribution.
//
// Paper findings this must reproduce (shape, not absolute numbers):
//   * uniform curves order by replication ratio and rise with TTL;
//   * the Zipf curve hugs the WORST uniform curve (0.005%);
//   * at the hybrid-P2P operating point (TTL 3, ~1000+ peers reached)
//     Zipf success is a few percent while the uniform-0.1% model
//     predicts ~62% — the flooding phase of hybrid search is broken.
//
// The locate sweep runs through the engine registry: --engine picks any
// registered strategy that answers locate queries (default: flood).
#include "bench/bench_common.hpp"

#include "src/analysis/rare_queries.hpp"
#include "src/analysis/replication.hpp"
#include "src/sim/flood.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

struct SuccessResult {
  double rate = 0.0;
  double mean_messages = 0.0;
};

SuccessResult success_rate(const sim::SearchEngine& engine, std::size_t nodes,
                           const sim::Placement& placement, std::uint32_t ttl,
                           std::size_t trials, std::uint64_t seed,
                           std::size_t threads) {
  const sim::TrialRunner runner({threads, seed});
  const sim::TrialAggregate agg = bench::run_engine_sweep(
      runner, trials, engine, [&](std::size_t t, util::Rng& rng) {
        sim::Query query;
        query.source = static_cast<NodeId>(rng.bounded(nodes));
        query.holders = placement.holders[rng.bounded(placement.num_objects())];
        query.ttl = ttl;
        query.trial = t;
        return query;
      });
  return {agg.success_rate(), agg.mean_messages()};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 1.0);
  const auto nodes = cli.get_uint("nodes", 40'000);
  const auto trials = cli.get_uint("trials", 2'000);
  const auto crawl_scale = cli.get_double("crawl-scale", 0.05);
  const std::string topology = cli.get("topology", "two-tier");
  bench::print_header(
      "fig8_flood_success", env,
      "Fig 8: 40,000-node network; uniform {2,5,10,20,40} copies vs Zipf; "
      "Zipf tracks the 0.005% uniform curve");

  // Topology. Default: modern two-tier Gnutella. --topology flat|ba for
  // the DESIGN.md ablation.
  util::Rng topo_rng(env.seed);
  const overlay::TwoTierTopology topo =
      bench::build_bench_topology(topology, nodes, topo_rng);

  // Locate engine for the placement sweep (registry-resolved).
  const std::string engine_name = env.engine.empty() ? "flood" : env.engine;
  const sim::EngineEntry* entry = sim::find_engine(engine_name);
  if (entry == nullptr || !entry->can_locate) {
    std::cerr << "--engine '" << engine_name
              << "' cannot answer locate (placement) queries\n";
    return 2;
  }
  sim::EngineWorld ew;
  ew.graph = &topo.graph;
  ew.forwards = &topo.is_ultrapeer;
  const auto engine = entry->make(ew);
  if (engine == nullptr) {
    std::cerr << "--engine '" << engine_name
              << "' cannot run in this bench (world lacks what it needs)\n";
    return 2;
  }

  // Reach table (Section V in-text): average fraction of peers reached
  // per TTL. Paper: 0.05%, ~1%, ~5% (over a thousand nodes), 26.25%,
  // 82.95% for TTL 1..5.
  {
    util::Table reach({"TTL", "paper reach", "measured reach",
                       "peers reached", "messages"});
    const char* paper_reach[] = {"0.05%", "~1%", "2.5-5%", "26.25%", "82.95%"};
    sim::FloodEngine flood(topo.graph);
    util::Rng rng(env.seed + 9);
    for (std::uint32_t ttl = 1; ttl <= 5; ++ttl) {
      util::RunningStats coverage, msgs;
      for (int i = 0; i < 200; ++i) {
        const auto src =
            static_cast<NodeId>(rng.bounded(topo.graph.num_nodes()));
        const sim::FloodResult r = flood.run(src, ttl, &topo.is_ultrapeer);
        coverage.add(r.coverage(topo.graph.num_nodes()));
        msgs.add(static_cast<double>(r.messages));
      }
      reach.add_row();
      reach.cell(static_cast<std::uint64_t>(ttl))
          .cell(paper_reach[ttl - 1])
          .percent(coverage.mean())
          .cell(coverage.mean() * static_cast<double>(nodes), 0)
          .cell(msgs.mean(), 0);
    }
    bench::emit(reach, env, "Sec V — flood reach per TTL");
  }

  // Placements: uniform copies and crawl-derived Zipf counts.
  const bench::ReplicationPlacements placements =
      bench::build_replication_placements(env, crawl_scale, nodes);

  util::Table t({"TTL", "uni 0.005%", "uni 0.0125%", "uni 0.025%",
                 "uni 0.05%", "uni 0.1%", "zipf (measured dist)"});
  std::vector<double> zipf_at_ttl, uni40_at_ttl;
  for (std::uint32_t ttl = 1; ttl <= 5; ++ttl) {
    t.add_row();
    t.cell(static_cast<std::uint64_t>(ttl));
    for (std::size_t i = 0; i < placements.uniform.size(); ++i) {
      const auto r = success_rate(*engine, topo.graph.num_nodes(),
                                  placements.uniform[i], ttl, trials,
                                  env.seed + ttl * 10 + i, env.threads);
      t.percent(r.rate, 1);
      if (i + 1 == placements.uniform.size()) uni40_at_ttl.push_back(r.rate);
    }
    const auto z =
        success_rate(*engine, topo.graph.num_nodes(), placements.zipf, ttl,
                     trials, env.seed + ttl, env.threads);
    t.percent(z.rate, 1);
    zipf_at_ttl.push_back(z.rate);
  }
  bench::emit(t, env, "Fig 8 — flood success rate vs TTL");

  // Mean TTL-3 reach for the analytical model column.
  double reach3 = 0.0;
  {
    sim::FloodEngine flood(topo.graph);
    util::Rng rng(env.seed + 77);
    for (int i = 0; i < 100; ++i) {
      const auto src = static_cast<NodeId>(rng.bounded(nodes));
      reach3 += static_cast<double>(
          flood.run(src, 3, &topo.is_ultrapeer).reached.size());
    }
    reach3 /= 100.0;
  }
  util::Table headline({"claim", "paper", "measured"});
  headline.add_row();
  headline.cell("TTL-3 success, uniform 0.1%").cell("62%").percent(
      uni40_at_ttl[2], 1);
  headline.add_row();
  headline.cell("  analytical model at measured reach")
      .cell("62% (predicted)")
      .percent(analysis::analytical_flood_success(
                   40, static_cast<std::uint64_t>(reach3), nodes),
               1);
  headline.add_row();
  headline.cell("TTL-3 success, Zipf placement").cell("~5%").percent(
      zipf_at_ttl[2], 1);
  headline.add_row();
  headline.cell("Zipf ~ worst uniform curve").cell("0.005% curve").cell(
      zipf_at_ttl[4] < uni40_at_ttl[4] ? "below 0.1% curve" : "NOT below");
  bench::emit(headline, env, "Sec V — headline comparison at the hybrid "
                             "operating point");
  return 0;
}
