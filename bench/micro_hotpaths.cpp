// google-benchmark microbenchmarks for the hot paths every experiment
// leans on: Zipf sampling, tokenization, Bloom probes, flood BFS, Chord
// lookups and Jaccard over interned term sets.
#include <benchmark/benchmark.h>

#include "src/core/bloom.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/dht.hpp"
#include "src/sim/flood.hpp"
#include "src/text/tokenizer.hpp"
#include "src/util/jaccard.hpp"
#include "src/util/rng.hpp"
#include "src/util/zipf.hpp"

namespace {

using namespace qcp2p;

void BM_ZipfSample(benchmark::State& state) {
  const util::ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)),
                               1.0);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1'000)->Arg(1'000'000);

void BM_DiscreteSample(benchmark::State& state) {
  const auto weights = util::zipf_pmf(static_cast<std::size_t>(state.range(0)),
                                      1.0);
  const util::DiscreteSampler sampler{std::span<const double>(weights)};
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler(rng));
  }
}
BENCHMARK(BM_DiscreteSample)->Arg(1'000)->Arg(100'000);

void BM_Tokenize(benchmark::State& state) {
  const std::string name =
      "Aaron Neville ft. Linda Ronstadt - I Don't Know Much (Live).mp3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::tokenize(name));
  }
}
BENCHMARK(BM_Tokenize);

void BM_SanitizeFilename(benchmark::State& state) {
  const std::string name =
      "AARON_NEVILLE__ft__LINDA-RONSTADT---I-DON'T-KNOW-MUCH.MP3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::sanitize_filename(name));
  }
}
BENCHMARK(BM_SanitizeFilename);

void BM_BloomProbe(benchmark::State& state) {
  core::BloomFilter bf(static_cast<std::size_t>(state.range(0)), 6);
  util::Rng rng(3);
  for (int i = 0; i < 96; ++i) bf.insert(rng());
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.maybe_contains(key++));
  }
}
BENCHMARK(BM_BloomProbe)->Arg(1'024)->Arg(16'384);

void BM_FloodTtl(benchmark::State& state) {
  util::Rng rng(4);
  overlay::TwoTierParams params;
  params.num_nodes = 40'000;
  const overlay::TwoTierTopology topo = overlay::gnutella_two_tier(params, rng);
  sim::FloodEngine engine(topo.graph);
  std::uint64_t src = 0;
  const auto ttl = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto r = engine.run(
        static_cast<overlay::NodeId>(src++ % params.num_nodes), ttl,
        &topo.is_ultrapeer);
    benchmark::DoNotOptimize(r.reached.size());
  }
}
BENCHMARK(BM_FloodTtl)->Arg(2)->Arg(3)->Arg(5)->Unit(benchmark::kMicrosecond);

void BM_ChordLookup(benchmark::State& state) {
  const sim::ChordDht dht(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dht.lookup(rng(), static_cast<overlay::NodeId>(
                              rng.bounded(dht.num_nodes()))));
  }
}
BENCHMARK(BM_ChordLookup)->Arg(1'024)->Arg(40'000);

void BM_JaccardSorted(benchmark::State& state) {
  util::Rng rng(6);
  std::vector<std::uint32_t> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(static_cast<std::uint32_t>(rng.bounded(1u << 20)));
    b.push_back(static_cast<std::uint32_t>(rng.bounded(1u << 20)));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::jaccard_sorted(a, b));
  }
}
BENCHMARK(BM_JaccardSorted)->Arg(200)->Arg(5'000);

}  // namespace

BENCHMARK_MAIN();
