// google-benchmark microbenchmarks for the hot paths every experiment
// leans on: Zipf sampling, tokenization, Bloom probes, flood BFS, Chord
// lookups, Jaccard over interned term sets, and the content hot paths
// (PeerStore::match / may_match, topology build, end-to-end flood_search)
// guarded by the BENCH_hotpaths.json regression harness.
//
// --hotpaths-json=PATH writes {"benchmarks": {name: ns/op}} via
// bench/bench_json.hpp; bench/run_hotpaths.sh merges in exp_* wall times.
#include <benchmark/benchmark.h>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <cstring>
#include <filesystem>
#include <functional>
#include <iostream>
#include <map>
#include <string>

#include "bench/bench_json.hpp"
#include "src/des/simulator.hpp"
#include "src/core/bloom.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/dht.hpp"
#include "src/sim/flood.hpp"
#include "src/sim/network.hpp"
#include "src/sim/world_snapshot.hpp"
#include "src/text/tokenizer.hpp"
#include "src/trace/content_model.hpp"
#include "src/trace/gnutella.hpp"
#include "src/util/jaccard.hpp"
#include "src/util/rng.hpp"
#include "src/util/zipf.hpp"

namespace {

using namespace qcp2p;

void BM_ZipfSample(benchmark::State& state) {
  const util::ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)),
                               1.0);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1'000)->Arg(1'000'000);

void BM_DiscreteSample(benchmark::State& state) {
  const auto weights = util::zipf_pmf(static_cast<std::size_t>(state.range(0)),
                                      1.0);
  const util::DiscreteSampler sampler{std::span<const double>(weights)};
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler(rng));
  }
}
BENCHMARK(BM_DiscreteSample)->Arg(1'000)->Arg(100'000);

void BM_Tokenize(benchmark::State& state) {
  const std::string name =
      "Aaron Neville ft. Linda Ronstadt - I Don't Know Much (Live).mp3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::tokenize(name));
  }
}
BENCHMARK(BM_Tokenize);

void BM_SanitizeFilename(benchmark::State& state) {
  const std::string name =
      "AARON_NEVILLE__ft__LINDA-RONSTADT---I-DON'T-KNOW-MUCH.MP3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::sanitize_filename(name));
  }
}
BENCHMARK(BM_SanitizeFilename);

void BM_BloomProbe(benchmark::State& state) {
  core::BloomFilter bf(static_cast<std::size_t>(state.range(0)), 6);
  util::Rng rng(3);
  for (int i = 0; i < 96; ++i) bf.insert(rng());
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.maybe_contains(key++));
  }
}
BENCHMARK(BM_BloomProbe)->Arg(1'024)->Arg(16'384);

void BM_FloodTtl(benchmark::State& state) {
  util::Rng rng(4);
  overlay::TwoTierParams params;
  params.num_nodes = 40'000;
  const overlay::TwoTierTopology topo = overlay::gnutella_two_tier(params, rng);
  sim::FloodEngine engine(topo.graph);
  std::uint64_t src = 0;
  const auto ttl = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto r = engine.run(
        static_cast<overlay::NodeId>(src++ % params.num_nodes), ttl,
        &topo.is_ultrapeer);
    benchmark::DoNotOptimize(r.reached.size());
  }
}
BENCHMARK(BM_FloodTtl)->Arg(2)->Arg(3)->Arg(5)->Unit(benchmark::kMicrosecond);

void BM_ChordLookup(benchmark::State& state) {
  const sim::ChordDht dht(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dht.lookup(rng(), static_cast<overlay::NodeId>(
                              rng.bounded(dht.num_nodes()))));
  }
}
BENCHMARK(BM_ChordLookup)->Arg(1'024)->Arg(40'000);

// ---------------------------------------------------------------------------
// Content hot paths (the BENCH_hotpaths.json regression set). One shared
// fixture mirrors the exp_* benches: a crawl-derived PeerStore over 2,000
// peers, a degree-8 flat overlay, and object-derived conjunctive queries.
// ---------------------------------------------------------------------------

struct ContentFixture {
  static constexpr std::size_t kNodes = 2'000;
  sim::PeerStore store;
  overlay::Graph graph;
  std::vector<std::vector<text::TermId>> queries;
  std::vector<overlay::NodeId> probe_peers;

  ContentFixture() : store(0), graph(0) {
    trace::ContentModelParams mp;  // BenchEnv::model_params at scale 0.02
    mp.core_lexicon_size = 2'000;
    mp.tail_lexicon_size = 80'000;
    mp.catalog_songs = 50'000;
    mp.artists = 8'000;
    mp.seed = 42;
    const trace::ContentModel model(mp);
    trace::GnutellaCrawlParams cp = trace::GnutellaCrawlParams{}.scaled(0.02);
    cp.seed = 42;
    const trace::CrawlSnapshot crawl = generate_gnutella_crawl(model, cp);
    store = sim::peer_store_from_crawl(crawl, kNodes);

    util::Rng rng(42);
    graph = overlay::random_regular(kNodes, 8, rng);

    // Object-derived 1-3 term queries (every query has >= 1 hit), plus a
    // uniform probe-peer stream: most probes miss, as in a real flood.
    util::Rng qrng(49);
    std::size_t guard = 0;
    while (queries.size() < 512 && guard++ < 50'000) {
      const auto peer =
          static_cast<overlay::NodeId>(qrng.bounded(store.num_peers()));
      if (store.objects(peer).empty()) continue;
      const auto& obj =
          store.objects(peer)[qrng.bounded(store.objects(peer).size())];
      if (obj.terms.empty()) continue;
      std::vector<text::TermId> q;
      const std::size_t n =
          1 + qrng.bounded(std::min<std::size_t>(3, obj.terms.size()));
      for (std::size_t i = 0; i < n; ++i) {
        q.push_back(obj.terms[qrng.bounded(obj.terms.size())]);
      }
      std::sort(q.begin(), q.end());
      q.erase(std::unique(q.begin(), q.end()), q.end());
      queries.push_back(std::move(q));
    }
    for (std::size_t i = 0; i < 4'096; ++i) {
      probe_peers.push_back(
          static_cast<overlay::NodeId>(qrng.bounded(kNodes)));
    }
  }
};

const ContentFixture& content_fixture() {
  static const ContentFixture fixture;
  return fixture;
}

void BM_PeerStoreMatch(benchmark::State& state) {
  const ContentFixture& fx = content_fixture();
  sim::PeerStore::MatchScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto peer = fx.probe_peers[i % fx.probe_peers.size()];
    const auto& q = fx.queries[i % fx.queries.size()];
    benchmark::DoNotOptimize(fx.store.match(peer, q, scratch).size());
    ++i;
  }
}
BENCHMARK(BM_PeerStoreMatch);

void BM_PeerStoreMayMatch(benchmark::State& state) {
  const ContentFixture& fx = content_fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto peer = fx.probe_peers[i % fx.probe_peers.size()];
    const auto& q = fx.queries[i % fx.queries.size()];
    benchmark::DoNotOptimize(fx.store.may_match(peer, q));
    ++i;
  }
}
BENCHMARK(BM_PeerStoreMayMatch);

void BM_TwoTierBuild(benchmark::State& state) {
  overlay::TwoTierParams params;
  params.num_nodes = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    util::Rng rng(seed++);
    const overlay::TwoTierTopology topo =
        overlay::gnutella_two_tier(params, rng);
    benchmark::DoNotOptimize(topo.graph.num_edges());
  }
}
BENCHMARK(BM_TwoTierBuild)
    ->Arg(4'096)
    ->Arg(40'000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Million-node world construction + snapshot hot paths. BM_WorldBuild is
// the streaming CSR path (CsrGraphBuilder two-pass build, the default);
// BM_WorldBuildLegacy forces the vector<vector> adjacency + freeze()
// path it replaced — the pair is the build-speedup regression guard.
// ---------------------------------------------------------------------------

void BM_WorldBuild(benchmark::State& state) {
  overlay::TwoTierParams params;
  params.num_nodes = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    util::Rng rng(seed++);
    const overlay::TwoTierTopology topo =
        overlay::gnutella_two_tier(params, rng, {.threads = 1});
    benchmark::DoNotOptimize(topo.graph.num_edges());
  }
}
// One build per repetition so the recorded min-of-reps (the harness's
// de-noising statistic) is a true minimum over single builds rather
// than a minimum over per-repetition means — at ~10^2 ms a mean folds
// shared-runner interference spikes back into the number. Both sides
// of the pair use the same shape so the recorded ratio is symmetric.
BENCHMARK(BM_WorldBuild)
    ->Arg(1'000'000)
    ->Iterations(1)
    ->Repetitions(5)
    ->Unit(benchmark::kMillisecond);

void BM_WorldBuildLegacy(benchmark::State& state) {
  overlay::TwoTierParams params;
  params.num_nodes = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    util::Rng rng(seed++);
    const overlay::TwoTierTopology topo = overlay::gnutella_two_tier(
        params, rng, {.threads = 1, .legacy_adjacency = true});
    benchmark::DoNotOptimize(topo.graph.num_edges());
  }
}
BENCHMARK(BM_WorldBuildLegacy)
    ->Arg(1'000'000)
    ->Iterations(1)
    ->Repetitions(5)
    ->Unit(benchmark::kMillisecond);

/// One built world shared by the snapshot benchmarks: saved to disk
/// once, then mmap-loaded per iteration.
struct SnapshotFixture {
  std::string path;
  std::size_t nodes = 0;

  SnapshotFixture() {
    nodes = 200'000;
    util::Rng rng(7);
    const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);
    sim::PeerStore store(nodes);
    util::Rng srng(8);
    for (overlay::NodeId v = 0; v < nodes; ++v) {
      store.add_object(v, srng.bounded(nodes / 4),
                       {static_cast<text::TermId>(srng.bounded(5'000)),
                        static_cast<text::TermId>(srng.bounded(5'000))});
    }
    store.finalize();
    path = (std::filesystem::temp_directory_path() /
            "hotpaths_world.wsnap")
               .string();
    sim::save_world_snapshot(path, graph, store);
  }
};

const SnapshotFixture& snapshot_fixture() {
  static const SnapshotFixture fixture;
  return fixture;
}

void BM_SnapshotLoad(benchmark::State& state) {
  const SnapshotFixture& fx = snapshot_fixture();
  for (auto _ : state) {
    const sim::WorldSnapshot snap = sim::WorldSnapshot::load(fx.path);
    const overlay::Graph g = snap.graph_view();
    const sim::PeerStore s = snap.store_view();
    benchmark::DoNotOptimize(g.num_edges());
    benchmark::DoNotOptimize(s.total_objects());
  }
}
BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMicrosecond);

void BM_GraphFreezeThaw(benchmark::State& state) {
  // thaw() must size each adjacency list from the CSR offsets up front;
  // this round trip regresses badly if it falls back to push_back
  // growth (the pre-reserve behavior). remove_edge on a frozen graph is
  // the thaw trigger; re-adding the edge and refreezing restores the
  // exact starting state for the next iteration.
  util::Rng rng(7);
  overlay::Graph graph =
      overlay::random_regular(static_cast<std::size_t>(state.range(0)), 8,
                              rng);
  const overlay::NodeId u = 0;
  const overlay::NodeId v = graph.neighbors(0)[0];
  for (auto _ : state) {
    graph.remove_edge(u, v);  // thaws (per-node reserve from CSR offsets)
    graph.add_edge(u, v);
    graph.freeze();
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_GraphFreezeThaw)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_FloodSearch(benchmark::State& state) {
  const ContentFixture& fx = content_fixture();
  const auto ttl = static_cast<std::uint32_t>(state.range(0));
  sim::SearchScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto src = fx.probe_peers[i % fx.probe_peers.size()];
    const auto& q = fx.queries[i % fx.queries.size()];
    const auto r = sim::flood_search(fx.graph, fx.store, src, q, ttl, scratch);
    benchmark::DoNotOptimize(r.results.size());
    ++i;
  }
}
BENCHMARK(BM_FloodSearch)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

void BM_JaccardSorted(benchmark::State& state) {
  util::Rng rng(6);
  std::vector<std::uint32_t> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(static_cast<std::uint32_t>(rng.bounded(1u << 20)));
    b.push_back(static_cast<std::uint32_t>(rng.bounded(1u << 20)));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::jaccard_sorted(a, b));
  }
}
BENCHMARK(BM_JaccardSorted)->Arg(200)->Arg(5'000);

void BM_DesEventLoop(benchmark::State& state) {
  // Schedule/pop cost of the event kernel the flood-des and dht-des
  // engines spin on: a self-rescheduling handler chain of range(0)
  // events, reset between iterations so every pass replays the same
  // timeline (the per-query pattern of the DES-backed engines).
  const auto events = static_cast<std::uint64_t>(state.range(0));
  des::Simulator sim;
  std::uint64_t remaining = 0;
  std::function<void()> chain = [&] {
    if (--remaining > 0) sim.schedule(1.0, chain);
  };
  for (auto _ : state) {
    sim.reset();
    remaining = events;
    sim.schedule(1.0, chain);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_DesEventLoop)->Arg(1'024)->Unit(benchmark::kMicrosecond);

/// Console reporter that additionally collects per-benchmark ns/op for
/// the BENCH_hotpaths.json regression file. With --benchmark_repetitions
/// the minimum across repetitions is kept — the noise-robust estimator
/// for a shared/virtualized runner, where interference only ever adds
/// time.
class HotpathsReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration ||
          run.iterations == 0) {
        continue;
      }
      const double ns_per_op = run.real_accumulated_time /
                               static_cast<double>(run.iterations) * 1e9;
      const std::string name = run.benchmark_name();
      const auto [it, inserted] = best_.emplace(name, ns_per_op);
      if (!inserted && ns_per_op >= it->second) continue;
      it->second = ns_per_op;
      report.set("benchmarks", name, ns_per_op);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  qcp2p::bench::JsonReport report;

 private:
  std::map<std::string, double> best_;
};

}  // namespace

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // Keep freed arena pages resident across iterations. The world-build
  // benchmarks allocate and free tens of MB per iteration; with default
  // trim/mmap policy glibc returns those pages to the kernel on every
  // free, so each iteration re-pays page faults and kernel zeroing for
  // memory the previous iteration just touched. That overhead measures
  // allocator trim policy, not the algorithm under test, and it skews
  // fast benchmarks proportionally more than slow ones. Applies to the
  // whole process, i.e. to every benchmark equally.
  mallopt(M_TRIM_THRESHOLD, -1);
  mallopt(M_MMAP_MAX, 0);
#endif
  // Extract --hotpaths-json=PATH before google-benchmark sees (and
  // rejects) the unknown flag.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--hotpaths-json=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      json_path = argv[i] + std::strlen(kFlag);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  HotpathsReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty() && !reporter.report.write_file(json_path)) {
    std::cerr << "micro_hotpaths: cannot write " << json_path << "\n";
    return 1;
  }
  return 0;
}
