// Latency experiment (protocol-level extension of Fig 8): time-to-first-
// result for TTL flooding under the measured content distribution vs the
// latency a structured lookup needs for the same query — each measured
// twice, by a round-based estimate and by the descriptor-level
// discrete-event engines, through one TimingModel.
//
// The shape to observe: when the flood succeeds it is FAST (popular
// content is nearby), but under Zipf replication it rarely succeeds —
// while the DHT's O(log N) hop chain costs a predictable, modest latency
// on every query. Latency is where hybrid search's "try flooding first"
// looks cheapest and still loses. The flood/flood-des and
// dht-only/dht-des row pairs also show how close the cheap estimate
// lands to the exact event-driven number.
#include "bench/bench_common.hpp"

#include "src/util/stats.hpp"

using namespace qcp2p;

namespace {

// Timing folded into integer ns so TrialAggregate's integer-sum
// determinism contract holds: output is byte-identical for any
// --threads value.
sim::TrialOutcome map_timed(const sim::SearchOutcome& r) {
  sim::TrialOutcome out;
  out.success = r.success;
  out.messages = r.messages;
  out.peers_probed = r.peers_probed;
  if (r.timing.has_value()) {
    if (r.timing->has_first_hit()) {
      out.extra[0] =
          static_cast<std::uint64_t>(r.timing->first_hit_s * 1e9 + 0.5);
      out.extra[1] = 1;  // trials with a first hit
    }
    out.extra[2] = static_cast<std::uint64_t>(r.timing->clock_s * 1e9 + 0.5);
    out.extra[3] = r.timing->events;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.01);
  const auto nodes = cli.get_uint("nodes", 1'500);
  const auto num_queries = cli.get_uint("queries", 150);
  bench::print_header(
      "exp_latency", env,
      "Time-to-first-result: flood vs DHT under Zipf content, estimated "
      "(rounds x mean link) and exact (descriptor-level DES) side by side");

  const bench::SearchWorld world =
      bench::build_search_world(env, nodes, num_queries);
  sim::EngineWorld ew = world.engine_world();
  ew.timing.seed = bench::seed_stream(env.seed, 11);  // 20-200ms links

  std::vector<bench::NamedEngine> engines;
  if (!env.engine.empty()) {
    engines = bench::make_sweep_engines(env, ew);
  } else {
    for (const std::string_view name :
         {"flood", "flood-des", "dht-only", "dht-des"}) {
      auto engine = sim::make_engine(name, ew);
      if (engine != nullptr) {
        engines.push_back({sim::find_engine(name)->name, std::move(engine)});
      }
    }
  }

  // --scenario=<name> reruns the whole comparison under a named failure
  // scenario (retry-2 recovery); without it the decoration is skipped.
  std::unique_ptr<bench::FaultedSweep> faulted;
  if (!env.scenario.empty()) {
    sim::RecoveryPolicy policy;
    policy.max_retries = 2;
    faulted = bench::make_faulted_sweep(
        std::move(engines), bench::scenario_plan(env, world.graph), policy);
  }
  const std::vector<bench::NamedEngine>& sweep =
      faulted != nullptr ? faulted->engines : engines;

  const sim::TrialRunner runner({env.threads, env.seed});
  util::Table t({"engine", "TTL", "success", "first hit (mean s)",
                 "sim clock (mean s)", "events/query", "msgs/query"});
  for (const std::uint32_t ttl : {2u, 3u, 4u}) {
    for (const bench::NamedEngine& ne : sweep) {
      const sim::TrialAggregate agg = bench::run_engine_sweep(
          runner, num_queries, *ne.engine,
          [&](std::size_t trial, util::Rng& trng) {
            sim::Query q;
            q.source = static_cast<sim::NodeId>(trng.bounded(nodes));
            q.terms = world.queries[trial % world.queries.size()];
            q.ttl = ttl;
            q.trial = trial;
            return q;
          },
          &map_timed);
      const std::uint64_t hit_trials = agg.extra[1];
      t.add_row();
      t.cell(std::string(ne.name))
          .cell(static_cast<std::uint64_t>(ttl))
          .percent(agg.success_rate(), 1)
          .cell(hit_trials != 0 ? static_cast<double>(agg.extra[0]) /
                                      static_cast<double>(hit_trials) / 1e9
                                : 0.0,
                3)
          .cell(static_cast<double>(agg.extra[2]) /
                    static_cast<double>(agg.trials) / 1e9,
                3)
          .cell(agg.mean_extra(3), 1)
          .cell(agg.mean_messages(), 0);
    }
  }
  bench::emit(t, env,
              "Flood vs DHT latency (estimated and DES-exact, 20-200ms "
              "links)");
  return 0;
}
