// Latency experiment (protocol-level extension of Fig 8): wall-clock
// time-to-first-result for TTL flooding under the measured content
// distribution, via the descriptor-faithful Gnutella simulation — vs the
// latency a structured lookup would need for the same query.
//
// The shape to observe: when the flood succeeds it is FAST (popular
// content is nearby), but under Zipf replication it rarely succeeds —
// while the DHT's O(log N) hop chain costs a predictable, modest latency
// on every query. Latency is where hybrid search's "try flooding first"
// looks cheapest and still loses.
#include "bench/bench_common.hpp"

#include "src/gnutella/network.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/dht.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.01);
  const auto nodes = cli.get_uint("nodes", 1'500);
  const auto num_queries = cli.get_uint("queries", 150);
  bench::print_header(
      "exp_latency", env,
      "Descriptor-level timing: flood time-to-first-hit vs DHT lookup "
      "latency under Zipf content");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);
  gnutella::NetworkParams np;  // 20-200ms per link
  gnutella::GnutellaNetwork net(graph, store, np);
  const sim::ChordDht dht(nodes, env.seed + 1);
  const double mean_link_s =
      0.5 * (np.min_link_latency_s + np.max_link_latency_s);

  util::Rng qrng(env.seed + 2);
  auto draw_query = [&]() -> std::vector<sim::TermId> {
    for (;;) {
      const auto peer = static_cast<NodeId>(qrng.bounded(nodes));
      if (store.objects(peer).empty()) continue;
      const auto& obj =
          store.objects(peer)[qrng.bounded(store.objects(peer).size())];
      if (obj.terms.empty()) continue;
      return {obj.terms[qrng.bounded(obj.terms.size())]};
    }
  };

  util::Table t({"flood TTL", "success", "first hit (mean s)",
                 "first hit (max s)", "msgs/query", "DHT lookup (mean s)"});
  for (const int ttl_int : {2, 3, 4}) {
    const auto ttl = static_cast<std::uint8_t>(ttl_int);
    util::RunningStats first_hit, msgs, dht_latency;
    std::size_t ok = 0;
    for (std::uint64_t q = 0; q < num_queries; ++q) {
      const auto src = static_cast<NodeId>(qrng.bounded(nodes));
      const auto terms = draw_query();
      const double t_issue = net.now();  // clock is cumulative over queries
      const gnutella::QueryOutcome out = net.query(src, terms, ttl);
      msgs.add(static_cast<double>(out.messages));
      if (out.first_hit()) {
        ++ok;
        first_hit.add(*out.first_hit() - t_issue);
      }
      // DHT latency model: routing hops (one term lookup) x mean link.
      const auto lr = dht.lookup(dht.term_key(terms[0]), src);
      dht_latency.add(static_cast<double>(lr.hops) * mean_link_s);
    }
    t.add_row();
    t.cell(static_cast<std::uint64_t>(ttl))
        .percent(static_cast<double>(ok) /
                     static_cast<double>(num_queries),
                 1)
        .cell(first_hit.count() ? first_hit.mean() : 0.0, 3)
        .cell(first_hit.count() ? first_hit.max() : 0.0, 3)
        .cell(msgs.mean(), 0)
        .cell(dht_latency.mean(), 3);
  }
  bench::emit(t, env,
              "Flood vs DHT latency (protocol simulation, 20-200ms links)");
  return 0;
}
