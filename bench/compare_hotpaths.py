#!/usr/bin/env python3
"""Hot-path perf-regression gate.

Compares two BENCH_hotpaths.json snapshots (run_hotpaths.sh output:
{"benchmarks": {name: ns/op}, "experiments_wall_s": {...}}) and exits
nonzero when any BM_* entry regresses by more than its threshold.
Experiment wall times are reported but never gate: they measure whole
pipelines on shared runners and are too noisy to fail on.

Thresholds are per benchmark: --threshold (default 15%) applies unless
the entry matches PER_BENCHMARK_THRESHOLDS below or a --threshold-for
NAME=FRACTION override. Single-shot Iterations(1) benches get more
headroom by default — one wall-clock sample carries allocator and page
-cache noise that a steady-state loop averages out.

Usage: compare_hotpaths.py baseline.json new.json [--threshold 0.15]
           [--threshold-for BM_WorldBuild=0.5] ...
"""

import argparse
import json
import sys

# Entry-specific defaults, keyed by benchmark name prefix (an entry like
# "BM_WorldBuild/100000" matches key "BM_WorldBuild"). The Iterations(1)
# world-construction benches run each pipeline exactly once, so their
# ns/op is a single wall-clock sample, not a steady-state mean.
PER_BENCHMARK_THRESHOLDS = {
    "BM_WorldBuild": 0.50,
    "BM_WorldBuildLegacy": 0.50,
    "BM_TwoTierBuild": 0.30,
    "BM_GraphFreezeThaw": 0.30,
}


def threshold_for(name, default, overrides):
    """Longest matching '/'-prefix key wins; CLI overrides beat built-ins."""
    best_key, best = None, default
    for table in (PER_BENCHMARK_THRESHOLDS, overrides):
        for key, value in table.items():
            if name == key or name.startswith(key + "/"):
                if best_key is None or len(key) >= len(best_key):
                    best_key, best = key, value
    return best


def load_benchmarks(path):
    with open(path) as f:
        report = json.load(f)
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise SystemExit(f"{path}: no 'benchmarks' object")
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="default max tolerated fractional slowdown per BM_* entry "
        "(default 0.15)",
    )
    parser.add_argument(
        "--threshold-for",
        action="append",
        default=[],
        metavar="NAME=FRACTION",
        help="per-benchmark threshold override (repeatable); NAME matches "
        "an entry exactly or as its '/'-prefix, e.g. BM_WorldBuild=0.5",
    )
    args = parser.parse_args()
    if not 0.0 < args.threshold < 10.0:
        raise SystemExit(f"--threshold out of range: {args.threshold}")
    overrides = {}
    for spec in args.threshold_for:
        name, sep, value = spec.partition("=")
        try:
            fraction = float(value)
        except ValueError:
            fraction = -1.0
        if not sep or not name or not 0.0 < fraction < 10.0:
            raise SystemExit(f"--threshold-for must be NAME=FRACTION: {spec!r}")
        overrides[name] = fraction

    base_report = load_benchmarks(args.baseline)
    new_report = load_benchmarks(args.new)
    base = base_report["benchmarks"]
    new = new_report["benchmarks"]

    regressions = []
    shared = sorted(n for n in set(base) & set(new) if n.startswith("BM_"))
    if not shared:
        raise SystemExit("no shared BM_* entries between the two snapshots")
    width = max(len(n) for n in shared)
    for name in shared:
        if base[name] <= 0:
            print(f"{name:<{width}}  skipped (non-positive baseline)")
            continue
        ratio = new[name] / base[name]
        threshold = threshold_for(name, args.threshold, overrides)
        flag = ""
        if ratio > 1.0 + threshold:
            flag = f"  << REGRESSION (> {threshold:.0%})"
            regressions.append((name, ratio, threshold))
        print(
            f"{name:<{width}}  {base[name]:>12.0f} -> {new[name]:>12.0f} ns/op"
            f"  ({ratio:5.2f}x){flag}"
        )
    for name in sorted(set(base) ^ set(new)):
        side = "baseline" if name in base else "new"
        print(f"{name:<{width}}  only in {side} (not gated)")

    base_wall = base_report.get("experiments_wall_s", {})
    new_wall = new_report.get("experiments_wall_s", {})
    for name in sorted(set(base_wall) & set(new_wall)):
        if base_wall[name] > 0:
            print(
                f"{name:<{width}}  {base_wall[name]:>11.3f} -> "
                f"{new_wall[name]:>12.3f} s "
                f"  ({new_wall[name] / base_wall[name]:5.2f}x, informational)"
            )

    if regressions:
        print(f"\nFAIL: {len(regressions)} hot path(s) regressed:")
        for name, ratio, threshold in regressions:
            print(f"  {name}: {ratio:.2f}x (threshold {threshold:.0%})")
        return 1
    print("\nOK: no BM_* entry regressed beyond its threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
