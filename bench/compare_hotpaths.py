#!/usr/bin/env python3
"""Hot-path perf-regression gate.

Compares two BENCH_hotpaths.json snapshots (run_hotpaths.sh output:
{"benchmarks": {name: ns/op}, "experiments_wall_s": {...}}) and exits
nonzero when any BM_* entry regresses by more than the threshold
(default 15%). Experiment wall times are reported but never gate: they
measure whole pipelines on shared runners and are too noisy to fail on.

Usage: compare_hotpaths.py baseline.json new.json [--threshold 0.15]
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        report = json.load(f)
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise SystemExit(f"{path}: no 'benchmarks' object")
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max tolerated fractional slowdown per BM_* entry (default 0.15)",
    )
    args = parser.parse_args()
    if not 0.0 < args.threshold < 10.0:
        raise SystemExit(f"--threshold out of range: {args.threshold}")

    base_report = load_benchmarks(args.baseline)
    new_report = load_benchmarks(args.new)
    base = base_report["benchmarks"]
    new = new_report["benchmarks"]

    regressions = []
    shared = sorted(n for n in set(base) & set(new) if n.startswith("BM_"))
    if not shared:
        raise SystemExit("no shared BM_* entries between the two snapshots")
    width = max(len(n) for n in shared)
    for name in shared:
        if base[name] <= 0:
            print(f"{name:<{width}}  skipped (non-positive baseline)")
            continue
        ratio = new[name] / base[name]
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, ratio))
        print(
            f"{name:<{width}}  {base[name]:>12.0f} -> {new[name]:>12.0f} ns/op"
            f"  ({ratio:5.2f}x){flag}"
        )
    for name in sorted(set(base) ^ set(new)):
        side = "baseline" if name in base else "new"
        print(f"{name:<{width}}  only in {side} (not gated)")

    base_wall = base_report.get("experiments_wall_s", {})
    new_wall = new_report.get("experiments_wall_s", {})
    for name in sorted(set(base_wall) & set(new_wall)):
        if base_wall[name] > 0:
            print(
                f"{name:<{width}}  {base_wall[name]:>11.3f} -> "
                f"{new_wall[name]:>12.3f} s "
                f"  ({new_wall[name] / base_wall[name]:5.2f}x, informational)"
            )

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} hot path(s) regressed beyond "
            f"{args.threshold:.0%}:"
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nOK: no BM_* entry regressed beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
