// Section VII experiment (the paper's position, its follow-on system [9]
// and the headline ablation of DESIGN.md): query-centric adaptive
// synopses vs content-centric synopses vs blind flooding, under a
// workload with the measured query/annotation mismatch plus flash-crowd
// bursts.
//
// Expected shape: with the same synopsis budget and message budget, the
// query-centric policy resolves more queries because it spends its
// advertising budget on terms users actually type — and the adaptive
// variant additionally picks up transiently popular terms mid-run.
#include "bench/bench_common.hpp"

#include "src/core/query_centric.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/flood.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

struct Workload {
  std::vector<std::vector<sim::TermId>> queries;   // phase 1: steady
  std::vector<std::vector<sim::TermId>> burst;     // phase 2: flash crowd
  core::TermId burst_term = 0;
};

/// Steady queries target niche-but-present object terms (the mismatch:
/// not the locally frequent ones); the burst phase hammers one term.
Workload make_workload(const sim::PeerStore& store, std::size_t count,
                       util::Rng& rng) {
  Workload w;
  auto draw_query = [&]() -> std::vector<sim::TermId> {
    for (;;) {
      const auto peer = static_cast<NodeId>(rng.bounded(store.num_peers()));
      if (store.objects(peer).empty()) continue;
      const auto& obj =
          store.objects(peer)[rng.bounded(store.objects(peer).size())];
      if (obj.terms.empty()) continue;
      // Single rarest-looking term: the highest id is the tail-most.
      return {obj.terms.back()};
    }
  };
  for (std::size_t i = 0; i < count; ++i) w.queries.push_back(draw_query());
  w.burst_term = draw_query()[0];
  for (std::size_t i = 0; i < count / 2; ++i) {
    w.burst.push_back({w.burst_term});
  }
  return w;
}

struct Outcome {
  double success = 0.0;
  double msgs = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 300);
  const auto budget = cli.get_uint("term-budget", 24);
  bench::print_header(
      "exp_adaptive_synopsis", env,
      "Sec VII position: query-centric adaptive synopses vs content-centric "
      "synopses vs flooding under the measured mismatch");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);

  util::Rng wrng(env.seed + 5);
  const Workload workload = make_workload(store, num_queries, wrng);

  core::SynopsisParams sp;
  sp.term_budget = budget;

  core::GuidedSearchParams gp;
  gp.ttl = 8;
  gp.match_fanout = 4;
  gp.fallback_fanout = 2;
  gp.message_budget = 400;

  // Tracker observing the steady workload (what peers would have seen).
  core::TermPopularityTracker tracker;
  for (const auto& q : workload.queries) tracker.observe_query(q);

  core::QueryCentricOverlay content(graph, store, sp,
                                    core::SynopsisPolicy::kContentCentric);
  core::QueryCentricOverlay query_centric(graph, store, sp,
                                          core::SynopsisPolicy::kQueryCentric);
  query_centric.rebuild_synopses(&tracker);

  auto run = [&](const core::QueryCentricOverlay& overlay,
                 const std::vector<std::vector<sim::TermId>>& queries,
                 std::uint64_t seed) {
    util::Rng prng(seed);
    std::size_t ok = 0;
    util::RunningStats msgs;
    for (const auto& q : queries) {
      const auto src = static_cast<NodeId>(prng.bounded(nodes));
      const auto r = overlay.search(src, q, gp, prng);
      ok += r.success;
      msgs.add(static_cast<double>(r.messages));
    }
    return Outcome{
        static_cast<double>(ok) / static_cast<double>(queries.size()),
        msgs.mean()};
  };
  auto run_flood = [&](const std::vector<std::vector<sim::TermId>>& queries,
                       std::uint32_t ttl, std::uint64_t seed) {
    util::Rng prng(seed);
    std::size_t ok = 0;
    util::RunningStats msgs;
    for (const auto& q : queries) {
      const auto src = static_cast<NodeId>(prng.bounded(nodes));
      const auto r = sim::flood_search(graph, store, src, q, ttl);
      ok += !r.results.empty();
      msgs.add(static_cast<double>(r.messages));
    }
    return Outcome{
        static_cast<double>(ok) / static_cast<double>(queries.size()),
        msgs.mean()};
  };

  util::Table t({"strategy", "steady success", "steady msgs/query"});
  const Outcome flood2 = run_flood(workload.queries, 2, env.seed + 21);
  const Outcome oc = run(content, workload.queries, env.seed + 22);
  const Outcome oq = run(query_centric, workload.queries, env.seed + 22);
  t.add_row();
  t.cell("flood TTL=2 (hybrid phase 1)").percent(flood2.success, 1).cell(
      flood2.msgs, 0);
  t.add_row();
  t.cell("content-centric synopses").percent(oc.success, 1).cell(oc.msgs, 0);
  t.add_row();
  t.cell("query-centric synopses").percent(oq.success, 1).cell(oq.msgs, 0);
  bench::emit(t, env, "Steady phase — mismatch workload");

  // Flash crowd: a previously-rare term becomes hot. The adaptive
  // overlay observes the burst and re-advertises; the static overlays
  // do not change.
  for (const auto& q : workload.burst) tracker.observe_query(q);
  core::QueryCentricOverlay adaptive(graph, store, sp,
                                     core::SynopsisPolicy::kQueryCentric);
  adaptive.rebuild_synopses(&tracker);  // full epoch rebuild
  query_centric.adapt_to_transients(tracker);  // incremental adaptation

  util::Table b({"strategy", "burst success", "burst msgs/query"});
  const Outcome bc = run(content, workload.burst, env.seed + 31);
  const Outcome bq = run(query_centric, workload.burst, env.seed + 31);
  const Outcome ba = run(adaptive, workload.burst, env.seed + 31);
  b.add_row();
  b.cell("content-centric (static)").percent(bc.success, 1).cell(bc.msgs, 0);
  b.add_row();
  b.cell("query-centric + transient adaptation")
      .percent(bq.success, 1)
      .cell(bq.msgs, 0);
  b.add_row();
  b.cell("query-centric, full rebuild").percent(ba.success, 1).cell(ba.msgs,
                                                                    0);
  bench::emit(b, env, "Flash-crowd phase — transiently popular term");
  return 0;
}
