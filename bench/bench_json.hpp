// Minimal JSON perf-report writer for the hot-path regression harness.
//
// BENCH_hotpaths.json layout (stable key order, diff-friendly):
//   {
//     "benchmarks":         { "<name>": <ns per op>, ... },
//     "experiments_wall_s": { "<exp binary>": <seconds>, ... },
//     "meta":               { "<key>": <value>, ... }
//   }
// micro_hotpaths fills "benchmarks" via --hotpaths-json=PATH;
// bench/run_hotpaths.sh times the exp_* binaries and merges the rest.
#pragma once

#include <fstream>
#include <map>
#include <ostream>
#include <string>

namespace qcp2p::bench {

/// Two-level {section: {key: number}} report. Keys are kept sorted so
/// successive runs diff cleanly in version control.
class JsonReport {
 public:
  void set(const std::string& section, const std::string& key, double value) {
    sections_[section][key] = value;
  }

  void write(std::ostream& os) const {
    os << "{\n";
    bool first_section = true;
    for (const auto& [section, entries] : sections_) {
      if (!first_section) os << ",\n";
      first_section = false;
      os << "  \"" << section << "\": {\n";
      bool first_key = true;
      for (const auto& [key, value] : entries) {
        if (!first_key) os << ",\n";
        first_key = false;
        os << "    \"" << key << "\": " << value;
      }
      os << "\n  }";
    }
    os << "\n}\n";
  }

  /// Returns false (leaving a note on stderr to the caller) if the file
  /// cannot be opened; benchmark output must never be lost silently.
  [[nodiscard]] bool write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    write(out);
    return bool{out};
  }

 private:
  std::map<std::string, std::map<std::string, double>> sections_;
};

}  // namespace qcp2p::bench
