// Serving-mode sweep: ONE live world per cell absorbing a continuous
// timestamped query stream under steady churn, instead of the
// rewind-per-trial harness the figure benches use (DESIGN.md section 10).
//
// Each (engine x qps x churn) cell copies the crawl-derived base world
// into a sim::ServingWorld and replays the same QueryTrace against it.
// The world is maintained incrementally the whole run: membership flips
// are tombstones + a liveness mask, topology repair is a batched
// Graph::apply_delta CSR merge, and content churn lands in the PeerStore
// delta layer until compact() folds it in — finalize() never runs again
// after construction.
//
// stdout carries only simulated, deterministic metrics (success rate,
// cache hit rate, messages/query, windowed p50/p99/p999 first-hit
// latency, maintenance counters): byte-identical for any --threads
// value. Wall-clock throughput — the saturation QPS the serving loop
// sustains on this machine — is inherently nondeterministic and goes to
// stderr.
#include "bench/bench_common.hpp"

#include <chrono>
#include <cstdio>

#include "src/overlay/topology.hpp"
#include "src/sim/serving.hpp"

using namespace qcp2p;

namespace {

/// Comma-separated list of doubles ("0,0.3" / "50,200"); exits 2 on
/// garbage, an empty element, or a value outside [lo, hi].
std::vector<double> double_list_flag(const util::Cli& cli,
                                     const std::string& name,
                                     const std::string& def, double lo,
                                     double hi) {
  const std::string raw = cli.get(name, def);
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= raw.size()) {
    const std::size_t comma = std::min(raw.find(',', pos), raw.size());
    const std::string item = raw.substr(pos, comma - pos);
    double value = 0.0;
    const char* const end = item.data() + item.size();
    const auto [parse_end, ec] = std::from_chars(item.data(), end, value);
    if (item.empty() || ec != std::errc{} || parse_end != end ||
        std::isnan(value) || value < lo || value > hi) {
      std::cerr << "--" << name << " must be a comma list of numbers in ["
                << lo << ", " << hi << "], got '" << raw << "'\n";
      std::exit(2);
    }
    out.push_back(value);
    pos = comma + 1;
  }
  return out;
}

std::vector<std::string> engine_list_flag(const util::Cli& cli,
                                          const bench::BenchEnv& env) {
  // --engine (validated by BenchEnv) wins; otherwise --engines is a
  // comma list of registry names.
  if (!env.engine.empty()) return {env.engine};
  const std::string raw = cli.get("engines", "flood,hybrid,adaptive");
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= raw.size()) {
    const std::size_t comma = std::min(raw.find(',', pos), raw.size());
    std::string name = raw.substr(pos, comma - pos);
    if (sim::find_engine(name) == nullptr) {
      std::cerr << "unknown engine '" << name
                << "' in --engines (registered: " << sim::engine_names()
                << ")\n";
      std::exit(2);
    }
    out.push_back(std::move(name));
    pos = comma + 1;
  }
  return out;
}

std::string ms(double seconds) { return util::Table::format(seconds * 1e3, 3); }

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.125);
  const auto nodes = cli.get_uint("nodes", 20'000);
  // 0 = ten queries per node (so `--nodes 100000` streams 1M queries).
  auto num_queries = cli.get_uint("queries", 0);
  if (num_queries == 0) num_queries = 10 * nodes;
  const auto window_s =
      bench::checked_double_flag(cli, "window", 60.0, 1e-3, 1e6);
  const auto ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 3));
  const auto refreeze_batch = cli.get_uint("refreeze-batch", 512);
  const auto compact_delta = cli.get_uint("compact-delta", 20'000);
  const bool no_cache = cli.get_bool("no-cache");
  const bool per_window = cli.get_bool("windows");
  // Ranked serving: every query asks its engine for top-k scored
  // results and the cache stores rankings (DESIGN.md section 11).
  const auto top_k = static_cast<std::uint32_t>(cli.get_uint("top-k", 0));
  const auto min_score = static_cast<float>(
      bench::checked_double_flag(cli, "min-score", 0.0, 0.0, 1e9));
  // Browse sessions: users repeating the same ranked query seconds
  // apart — the repetition score-aware caching amortizes.
  const auto browse =
      bench::checked_double_flag(cli, "browse", 0.0, 0.0, 1.0);
  const std::vector<double> qps_levels =
      double_list_flag(cli, "qps", "100", 0.1, 1e9);
  const std::vector<double> churn_levels =
      double_list_flag(cli, "churn", "0.3", 0.0, 0.95);
  const std::vector<std::string> engines = engine_list_flag(cli, env);

  bench::print_header(
      "exp_serving", env,
      "overlay-as-a-service: one live world, timestamped query stream, "
      "incremental maintenance, windowed p50/p99 SLOs");

  // Base world, built once and copied into every cell so each engine
  // serves the identical initial overlay/content.
  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore base_store = sim::peer_store_from_crawl(crawl, nodes);
  util::Rng topo_rng(env.seed);
  const overlay::Graph base_graph = overlay::random_regular(nodes, 8, topo_rng);

  trace::QueryTraceParams qp = env.query_params();
  qp.num_queries = num_queries;
  qp.browse_session_prob = browse;
  const trace::QueryTrace trace = generate_query_trace(model, qp);
  std::cout << "# stream: " << trace.queries().size()
            << " timestamped queries, " << trace.events().size()
            << " flash-crowd events, window " << window_s << " s\n";
  if (top_k != 0) {
    std::cout << "# ranked serving: top-k " << top_k << ", min-score "
              << min_score << ", browse-session prob " << browse << "\n";
  }

  util::Table summary({"engine", "qps", "offline", "queries", "success",
                       "cache hit", "msgs/q", "p50 ms", "p99 ms", "p999 ms",
                       "refreezes", "compactions", "online @end"});

  for (const std::string& engine : engines) {
    for (const double qps : qps_levels) {
      for (std::size_t ci = 0; ci < churn_levels.size(); ++ci) {
        const double offline = churn_levels[ci];
        sim::ServingConfig cfg;
        cfg.engine = engine;
        cfg.threads = env.threads;
        cfg.window_s = window_s;
        cfg.flood_ttl = ttl;
        cfg.qps = qps;
        cfg.churn_enabled = offline > 0.0;
        cfg.churn.mean_online_s = (1.0 - offline) * 3600.0;
        cfg.churn.mean_offline_s = offline * 3600.0;
        // Keyed by churn LEVEL only: every engine/qps cell at the same
        // offline fraction sees the identical membership stream.
        cfg.churn.seed = bench::seed_stream(env.seed, 0x11CULL + ci);
        cfg.refreeze_batch = refreeze_batch;
        cfg.compact_max_delta = compact_delta;
        cfg.cache_enabled = !no_cache;
        cfg.top_k = top_k;
        cfg.min_score = min_score;
        cfg.seed = env.seed;

        sim::ServingWorld world(base_graph, base_store, trace.queries(),
                                trace.duration_s(), cfg);
        const auto wall0 = std::chrono::steady_clock::now();
        const sim::ServingReport report = world.run();
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall0)
                .count();

        const sim::WindowStats& total = report.stats.total();
        summary.add_row();
        summary.cell(engine);
        summary.cell(qps, 0);
        summary.percent(offline, 0);
        summary.cell(total.queries);
        summary.percent(total.success_rate(), 2);
        summary.percent(total.hit_rate(), 2);
        summary.cell(total.queries == 0
                         ? 0.0
                         : static_cast<double>(total.messages) /
                               static_cast<double>(total.queries),
                     1);
        summary.cell(ms(total.latency.quantile(0.50)));
        summary.cell(ms(total.latency.quantile(0.99)));
        summary.cell(ms(total.latency.quantile(0.999)));
        summary.cell(report.refreezes);
        summary.cell(report.compactions);
        summary.percent(report.final_online_fraction, 1);

        // Wall-clock throughput: how many simulated queries the serving
        // loop retires per wall second — the saturation QPS of this
        // engine on this machine. Nondeterministic, so stderr only.
        std::fprintf(stderr,
                     "# engine=%s qps=%g offline=%.0f%%: wall %.2f s, "
                     "saturation %.0f queries/s (wall-clock)\n",
                     engine.c_str(), qps, offline * 100.0,
                     wall_s, wall_s > 0.0
                                 ? static_cast<double>(total.queries) / wall_s
                                 : 0.0);

        if (per_window) {
          util::Table wt({"t0 s", "t1 s", "queries", "success", "cache hit",
                          "joins", "leaves", "p50 ms", "p99 ms"});
          for (const sim::WindowStats& w : report.stats.windows()) {
            wt.add_row();
            wt.cell(w.start_s, 0);
            wt.cell(w.end_s, 0);
            wt.cell(w.queries);
            wt.percent(w.success_rate(), 1);
            wt.percent(w.hit_rate(), 1);
            wt.cell(w.joins);
            wt.cell(w.leaves);
            wt.cell(ms(w.latency.quantile(0.50)));
            wt.cell(ms(w.latency.quantile(0.99)));
          }
          bench::emit(wt, env,
                      "windows: " + engine + " @ " +
                          util::Table::format(qps, 0) + " qps, " +
                          util::Table::format(offline * 100.0, 0) +
                          "% offline");
        }
      }
    }
  }

  bench::emit(summary, env,
              "serving SLOs (" + std::to_string(nodes) + " nodes, " +
                  std::to_string(num_queries) + " queries/cell)");
  return 0;
}
