// Synopsis-budget ablation (DESIGN.md section 5): sweep the term budget
// and compare content-centric vs query-centric selection at each point.
//
// Expected shape: with an unlimited budget the policies converge (every
// term fits); the tighter the budget, the more the query-centric policy
// wins, because it spends scarce advertising slots on terms queries
// actually contain. Advertising bytes are reported for fairness.
#include "bench/bench_common.hpp"

#include "src/core/query_centric.hpp"
#include "src/overlay/topology.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 250);
  bench::print_header("exp_synopsis_budget", env,
                      "Sec VII ablation: term-budget sweep, content- vs "
                      "query-centric selection");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);

  // Workload: niche single-term queries (the tail-most term of real
  // objects) — the regime where selection matters.
  util::Rng wrng(env.seed + 1);
  std::vector<std::vector<sim::TermId>> queries;
  while (queries.size() < num_queries) {
    const auto peer = static_cast<NodeId>(wrng.bounded(nodes));
    if (store.objects(peer).empty()) continue;
    const auto& obj =
        store.objects(peer)[wrng.bounded(store.objects(peer).size())];
    if (obj.terms.empty()) continue;
    queries.push_back({obj.terms.back()});
  }
  core::TermPopularityTracker tracker;
  for (const auto& q : queries) tracker.observe_query(q);

  core::GuidedSearchParams gp;
  gp.ttl = 8;
  gp.match_fanout = 4;
  gp.fallback_fanout = 2;
  gp.message_budget = 400;

  auto run = [&](const core::QueryCentricOverlay& overlay,
                 std::uint64_t seed) {
    util::Rng prng(seed);
    std::size_t ok = 0;
    util::RunningStats msgs;
    for (const auto& q : queries) {
      const auto src = static_cast<NodeId>(prng.bounded(nodes));
      const auto r = overlay.search(src, q, gp, prng);
      ok += r.success;
      msgs.add(static_cast<double>(r.messages));
    }
    return std::pair<double, double>{
        static_cast<double>(ok) / static_cast<double>(queries.size()),
        msgs.mean()};
  };

  util::Table t({"term budget", "content success", "query-centric success",
                 "content msgs", "query-centric msgs", "ad KiB/peer"});
  for (const std::size_t budget : {8ULL, 16ULL, 32ULL, 64ULL, 256ULL}) {
    core::SynopsisParams sp;
    sp.term_budget = budget;
    core::QueryCentricOverlay content(graph, store, sp,
                                      core::SynopsisPolicy::kContentCentric);
    core::QueryCentricOverlay query_centric(
        graph, store, sp, core::SynopsisPolicy::kQueryCentric);
    query_centric.rebuild_synopses(&tracker);

    const auto [cs, cm] = run(content, env.seed + 21);
    const auto [qs, qm] = run(query_centric, env.seed + 21);
    t.add_row();
    t.cell(static_cast<std::uint64_t>(budget))
        .percent(cs, 1)
        .percent(qs, 1)
        .cell(cm, 0)
        .cell(qm, 0)
        .cell(static_cast<double>(query_centric.advertisement_bytes()) /
                  1024.0 / static_cast<double>(nodes),
              2);
  }
  bench::emit(t, env, "Budget sweep: the tighter the budget, the bigger the "
                      "query-centric advantage");
  return 0;
}
