// Section V/VII experiment: hybrid flood-then-DHT vs pure DHT under the
// measured content distribution.
//
// Paper claim: "a hybrid P2P system that used this observed object
// distribution would perform worse than a DHT-based search because few
// objects are replicated enough to make the unstructured search
// component efficient" — the flood phase almost always comes back with
// fewer than the rare-query cutoff (Loo et al.: 20 results), so the
// hybrid pays flood AND DHT messages on nearly every query.
//
// --rare-cutoff ablates Loo et al.'s threshold (DESIGN.md section 5).
#include "bench/bench_common.hpp"

#include "src/overlay/topology.hpp"
#include "src/sim/hybrid.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

/// Query workload: object-derived conjunctive queries (1-3 terms of a
/// real object), so every query has at least one satisfying object.
std::vector<std::vector<sim::TermId>> make_queries(const sim::PeerStore& store,
                                                   std::size_t count,
                                                   util::Rng& rng) {
  std::vector<std::vector<sim::TermId>> queries;
  std::size_t guard = 0;
  while (queries.size() < count && guard++ < 50 * count) {
    const auto peer = static_cast<NodeId>(rng.bounded(store.num_peers()));
    if (store.objects(peer).empty()) continue;
    const auto& obj =
        store.objects(peer)[rng.bounded(store.objects(peer).size())];
    if (obj.terms.empty()) continue;
    std::vector<sim::TermId> q;
    const std::size_t n = 1 + rng.bounded(std::min<std::size_t>(3, obj.terms.size()));
    for (std::size_t i = 0; i < n; ++i) {
      q.push_back(obj.terms[rng.bounded(obj.terms.size())]);
    }
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 400);
  const auto flood_ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 3));
  bench::print_header(
      "exp_hybrid_vs_dht", env,
      "Sec V/VII: hybrid flood-then-DHT pays for failed floods; DHT-only "
      "is cheaper at equal-or-better success under Zipf content");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);
  sim::ChordDht dht(nodes, env.seed + 4);
  const std::uint64_t publish_messages = dht.publish_store(store);
  std::cout << "# network: " << nodes << " nodes, " << store.total_objects()
            << " objects; one-time DHT publish cost: " << publish_messages
            << " messages\n";

  util::Rng qrng(env.seed + 7);
  const auto queries = make_queries(store, num_queries, qrng);

  util::Table t({"rare cutoff", "strategy", "success", "msgs/query",
                 "flood msgs", "dht msgs", "floods that fell back"});
  for (const std::size_t cutoff : {1ULL, 5ULL, 20ULL, 50ULL}) {
    sim::HybridParams hp;
    hp.flood_ttl = flood_ttl;
    hp.rare_cutoff = cutoff;

    util::RunningStats hybrid_msgs, dht_msgs, flood_part, dht_part;
    std::size_t hybrid_ok = 0, dht_ok = 0, fallbacks = 0;
    util::Rng srng(env.seed + 11);
    for (const auto& q : queries) {
      const auto src = static_cast<NodeId>(srng.bounded(nodes));
      const auto hr = sim::hybrid_search(graph, store, dht, src, q, hp);
      const auto dr = sim::dht_only_search(dht, src, q);
      hybrid_ok += hr.success();
      dht_ok += dr.success();
      hybrid_msgs.add(static_cast<double>(hr.total_messages()));
      flood_part.add(static_cast<double>(hr.flood_messages));
      dht_part.add(static_cast<double>(hr.dht_messages));
      dht_msgs.add(static_cast<double>(dr.total_messages()));
      fallbacks += hr.used_dht;
    }
    const double n = static_cast<double>(queries.size());
    t.add_row();
    t.cell(static_cast<std::uint64_t>(cutoff))
        .cell("hybrid")
        .percent(static_cast<double>(hybrid_ok) / n, 1)
        .cell(hybrid_msgs.mean(), 1)
        .cell(flood_part.mean(), 1)
        .cell(dht_part.mean(), 1)
        .percent(static_cast<double>(fallbacks) / n, 1);
    t.add_row();
    t.cell(static_cast<std::uint64_t>(cutoff))
        .cell("dht-only")
        .percent(static_cast<double>(dht_ok) / n, 1)
        .cell(dht_msgs.mean(), 1)
        .cell(0.0, 1)
        .cell(dht_msgs.mean(), 1)
        .cell("-");
  }
  bench::emit(t, env,
              "Hybrid vs DHT-only (paper: hybrid worse under Zipf content)");
  return 0;
}
