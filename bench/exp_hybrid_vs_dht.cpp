// Section V/VII experiment: hybrid flood-then-DHT vs pure DHT under the
// measured content distribution.
//
// Paper claim: "a hybrid P2P system that used this observed object
// distribution would perform worse than a DHT-based search because few
// objects are replicated enough to make the unstructured search
// component efficient" — the flood phase almost always comes back with
// fewer than the rare-query cutoff (Loo et al.: 20 results), so the
// hybrid pays flood AND DHT messages on nearly every query.
//
// --rare-cutoff ablates Loo et al.'s threshold (DESIGN.md section 5).
// --offline-fraction knocks that share of peers offline (session-churn
// steady state) before querying; both strategies see the same liveness
// mask, so the comparison stays paired. 0 (default) bypasses the mask.
// --engine=<name> restricts the table to one strategy (any registered
// engine runs; engines outside the hybrid/DHT pair get a generic,
// cutoff-independent row).
#include "bench/bench_common.hpp"

#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 400);
  const auto flood_ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 3));
  const double offline_fraction =
      bench::checked_double_flag(cli, "offline-fraction", 0.0, 0.0, 1.0);
  bench::print_header(
      "exp_hybrid_vs_dht", env,
      "Sec V/VII: hybrid flood-then-DHT pays for failed floods; DHT-only "
      "is cheaper at equal-or-better success under Zipf content");

  const bench::SearchWorld world =
      bench::build_search_world(env, nodes, num_queries);
  std::cout << "# network: " << nodes << " nodes, "
            << world.store.total_objects()
            << " objects; one-time DHT publish cost: "
            << world.publish_messages << " messages\n";

  const sim::TrialRunner runner({env.threads, env.seed + 11});

  // Optional liveness mask (satellite of the fault-injection layer):
  // offline peers neither answer floods nor serve DHT postings. Queries
  // from an offline source fail outright, same as exp_churn. With the
  // default fraction of 0 the mask stays null and every code path is
  // identical to the fault-free bench.
  bench::ChurnMask mask;
  const std::vector<bool>* online = nullptr;
  if (offline_fraction > 0.0) {
    mask = bench::steady_state_churn_mask(nodes, offline_fraction,
                                          env.seed + 13);
    online = &mask.online;
    std::cout << "# liveness: " << mask.online_fraction * 100.0
              << "% of peers online (target "
              << (1.0 - offline_fraction) * 100.0 << "%)\n";
  }

  sim::EngineWorld ew = world.engine_world();
  ew.hybrid.flood_ttl = flood_ttl;

  // Trial t draws its source from the same per-trial stream in every
  // pass, so the strategies stay paired query-for-query.
  const auto make_query = [&](std::size_t q, util::Rng& trng) {
    sim::Query query;
    query.source = static_cast<NodeId>(trng.bounded(nodes));
    query.terms = world.queries[q];
    query.ttl = flood_ttl;
    query.online = online;
    query.trial = q;
    return query;
  };

  util::Table t({"rare cutoff", "strategy", "success", "msgs/query",
                 "flood msgs", "dht msgs", "floods that fell back"});

  const bool run_hybrid = env.engine.empty() || env.engine == "hybrid";
  const bool run_dht = env.engine.empty() || env.engine == "dht-only";
  if (!run_hybrid && !run_dht) {
    // Some other registered engine: cutoff-independent, no flood/DHT
    // message split.
    const auto engine = sim::make_engine(env.engine, ew);
    if (engine == nullptr) {
      std::cerr << "--engine '" << env.engine
                << "' cannot run in this bench (world lacks what it needs)\n";
      return 2;
    }
    const sim::TrialAggregate agg = bench::run_engine_sweep(
        runner, world.queries.size(), *engine, make_query);
    t.add_row();
    t.cell("-")
        .cell(env.engine)
        .percent(agg.success_rate(), 1)
        .cell(agg.mean_messages(), 1)
        .cell("-")
        .cell("-")
        .cell("-");
    bench::emit(t, env,
                "Hybrid vs DHT-only (paper: hybrid worse under Zipf content)");
    return 0;
  }

  // DHT-only baseline does not depend on the cutoff: one pass.
  sim::TrialAggregate dht_agg;
  if (run_dht) {
    const auto dht_engine = sim::make_engine("dht-only", ew);
    dht_agg = bench::run_engine_sweep(runner, world.queries.size(),
                                      *dht_engine, make_query);
  }

  for (const std::size_t cutoff : {1ULL, 5ULL, 20ULL, 50ULL}) {
    if (run_hybrid) {
      ew.hybrid.rare_cutoff = cutoff;
      const auto hybrid_engine = sim::make_engine("hybrid", ew);
      const sim::TrialAggregate hy = bench::run_engine_sweep(
          runner, world.queries.size(), *hybrid_engine, make_query,
          [](const sim::SearchOutcome& r) {
            const auto* ex = sim::extras_as<sim::HybridExtras>(r);
            sim::TrialOutcome out;
            out.success = r.success;
            out.messages = r.messages;
            out.extra[0] = ex != nullptr ? ex->flood_messages : 0;
            out.extra[1] = ex != nullptr ? ex->dht_messages : 0;
            out.extra[2] = ex != nullptr && ex->used_dht ? 1 : 0;
            return out;
          });
      t.add_row();
      t.cell(static_cast<std::uint64_t>(cutoff))
          .cell("hybrid")
          .percent(hy.success_rate(), 1)
          .cell(hy.mean_messages(), 1)
          .cell(hy.mean_extra(0), 1)
          .cell(hy.mean_extra(1), 1)
          .percent(hy.mean_extra(2), 1);
    }
    if (run_dht) {
      t.add_row();
      t.cell(static_cast<std::uint64_t>(cutoff))
          .cell("dht-only")
          .percent(dht_agg.success_rate(), 1)
          .cell(dht_agg.mean_messages(), 1)
          .cell(0.0, 1)
          .cell(dht_agg.mean_messages(), 1)
          .cell("-");
    }
  }
  bench::emit(t, env,
              "Hybrid vs DHT-only (paper: hybrid worse under Zipf content)");
  return 0;
}
