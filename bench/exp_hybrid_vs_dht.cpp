// Section V/VII experiment: hybrid flood-then-DHT vs pure DHT under the
// measured content distribution.
//
// Paper claim: "a hybrid P2P system that used this observed object
// distribution would perform worse than a DHT-based search because few
// objects are replicated enough to make the unstructured search
// component efficient" — the flood phase almost always comes back with
// fewer than the rare-query cutoff (Loo et al.: 20 results), so the
// hybrid pays flood AND DHT messages on nearly every query.
//
// --rare-cutoff ablates Loo et al.'s threshold (DESIGN.md section 5).
// --offline-fraction knocks that share of peers offline (session-churn
// steady state) before querying; both strategies see the same liveness
// mask, so the comparison stays paired. 0 (default) bypasses the mask.
#include "bench/bench_common.hpp"

#include "src/overlay/churn.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/hybrid.hpp"
#include "src/sim/search_scratch.hpp"
#include "src/sim/trial_runner.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

/// Query workload: object-derived conjunctive queries (1-3 terms of a
/// real object), so every query has at least one satisfying object.
std::vector<std::vector<sim::TermId>> make_queries(const sim::PeerStore& store,
                                                   std::size_t count,
                                                   util::Rng& rng) {
  std::vector<std::vector<sim::TermId>> queries;
  std::size_t guard = 0;
  while (queries.size() < count && guard++ < 50 * count) {
    const auto peer = static_cast<NodeId>(rng.bounded(store.num_peers()));
    if (store.objects(peer).empty()) continue;
    const auto& obj =
        store.objects(peer)[rng.bounded(store.objects(peer).size())];
    if (obj.terms.empty()) continue;
    std::vector<sim::TermId> q;
    const std::size_t n = 1 + rng.bounded(std::min<std::size_t>(3, obj.terms.size()));
    for (std::size_t i = 0; i < n; ++i) {
      q.push_back(obj.terms[rng.bounded(obj.terms.size())]);
    }
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 400);
  const auto flood_ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 3));
  const double offline_fraction = cli.get_double("offline-fraction", 0.0);
  bench::print_header(
      "exp_hybrid_vs_dht", env,
      "Sec V/VII: hybrid flood-then-DHT pays for failed floods; DHT-only "
      "is cheaper at equal-or-better success under Zipf content");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);
  sim::ChordDht dht(nodes, env.seed + 4);
  const std::uint64_t publish_messages = dht.publish_store(store);
  std::cout << "# network: " << nodes << " nodes, " << store.total_objects()
            << " objects; one-time DHT publish cost: " << publish_messages
            << " messages\n";

  util::Rng qrng(env.seed + 7);
  const auto queries = make_queries(store, num_queries, qrng);

  const sim::TrialRunner runner({env.threads, env.seed + 11});

  // Optional liveness mask (satellite of the fault-injection layer):
  // offline peers neither answer floods nor serve DHT postings. Queries
  // from an offline source fail outright, same as exp_churn. With the
  // default fraction of 0 the mask stays null and every code path is
  // identical to the fault-free bench.
  std::vector<bool> online_mask;
  const std::vector<bool>* online = nullptr;
  if (offline_fraction > 0.0) {
    overlay::ChurnParams cp;
    cp.mean_online_s = (1.0 - offline_fraction) * 3600.0;
    cp.mean_offline_s = offline_fraction * 3600.0;
    cp.seed = env.seed + 13;
    overlay::ChurnProcess churn(nodes, cp);
    churn.advance(7200.0);
    online_mask = churn.online();
    online = &online_mask;
    std::cout << "# liveness: " << churn.online_fraction() * 100.0
              << "% of peers online (target "
              << (1.0 - offline_fraction) * 100.0 << "%)\n";
  }

  // DHT-only baseline does not depend on the cutoff: one pass. Trial t
  // draws its source from the same per-trial stream every hybrid pass
  // uses, so the two strategies stay paired query-for-query.
  const sim::TrialAggregate dht_agg =
      runner.run(queries.size(), [&](std::size_t q, util::Rng& trng) {
        const auto src = static_cast<NodeId>(trng.bounded(nodes));
        const auto dr = sim::dht_only_search(dht, src, queries[q], online);
        sim::TrialOutcome out;
        out.success = dr.success();
        out.messages = dr.total_messages();
        return out;
      });

  util::Table t({"rare cutoff", "strategy", "success", "msgs/query",
                 "flood msgs", "dht msgs", "floods that fell back"});
  for (const std::size_t cutoff : {1ULL, 5ULL, 20ULL, 50ULL}) {
    sim::HybridParams hp;
    hp.flood_ttl = flood_ttl;
    hp.rare_cutoff = cutoff;

    // One SearchScratch per worker shard: the flood phase reuses BFS and
    // match buffers across the shard's queries.
    const sim::TrialAggregate hy = runner.run(
        queries.size(), [] { return sim::SearchScratch{}; },
        [&](std::size_t q, util::Rng& trng, sim::SearchScratch& scratch) {
          const auto src = static_cast<NodeId>(trng.bounded(nodes));
          const auto hr =
              sim::hybrid_search(graph, store, dht, src, queries[q], hp,
                                 scratch, nullptr, online);
          sim::TrialOutcome out;
          out.success = hr.success();
          out.messages = hr.total_messages();
          out.extra[0] = hr.flood_messages;
          out.extra[1] = hr.dht_messages;
          out.extra[2] = hr.used_dht ? 1 : 0;
          return out;
        });
    t.add_row();
    t.cell(static_cast<std::uint64_t>(cutoff))
        .cell("hybrid")
        .percent(hy.success_rate(), 1)
        .cell(hy.mean_messages(), 1)
        .cell(hy.mean_extra(0), 1)
        .cell(hy.mean_extra(1), 1)
        .percent(hy.mean_extra(2), 1);
    t.add_row();
    t.cell(static_cast<std::uint64_t>(cutoff))
        .cell("dht-only")
        .percent(dht_agg.success_rate(), 1)
        .cell(dht_agg.mean_messages(), 1)
        .cell(0.0, 1)
        .cell(dht_agg.mean_messages(), 1)
        .cell("-");
  }
  bench::emit(t, env,
              "Hybrid vs DHT-only (paper: hybrid worse under Zipf content)");
  return 0;
}
