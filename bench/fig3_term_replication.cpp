// Figure 3: "Number of Gnutella clients with term". Object names are
// split with the Gnutella tokenization; the paper reports 1.22M unique
// terms, 71.3% on a single peer, 98.3% on <= 37 peers (0.1%).
#include "bench/bench_common.hpp"

#include <unordered_map>
#include <unordered_set>

#include "src/analysis/replication.hpp"
#include "src/text/tokenizer.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli);
  bench::print_header(
      "fig3_term_replication", env,
      "Fig 3: 1.22M unique terms; 71.3% singleton; 98.3% on <= 37 peers");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot snap =
      generate_gnutella_crawl(model, env.crawl_params());

  // String pipeline: tokenize realized names per peer, dedupe per peer,
  // count peers per term. Numeric tokens (track numbers, rip tags) carry
  // no content signal and are skipped, as QRP keyword tables do.
  text::TokenizerOptions opts;
  opts.drop_numeric = true;
  analysis::NameReplicaCounter term_counter;
  std::unordered_set<std::string> peer_terms;
  for (std::uint32_t p = 0; p < snap.num_peers(); ++p) {
    peer_terms.clear();
    for (trace::ObjectKey k : snap.peer_objects(p)) {
      for (std::string& term : text::tokenize(snap.object_name(k), opts)) {
        peer_terms.insert(std::move(term));
      }
    }
    for (const std::string& term : peer_terms) term_counter.add(p, term);
  }
  const auto counts = term_counter.counts();
  const auto s = analysis::summarize_replication(counts, snap.num_peers());

  util::Table t({"metric", "paper (full scale)", "measured"});
  t.add_row();
  t.cell("unique terms").cell("1.22M").cell(s.unique_items);
  t.add_row();
  t.cell("singleton terms").cell("71.3%").percent(s.singleton_fraction);
  t.add_row();
  t.cell("terms on <= 37 peers").cell("98.3%").percent(
      util::fraction_at_or_below(counts, 37));
  t.add_row();
  t.cell("max peers with a term").cell("-").cell(s.max_replicas, 0);
  t.add_row();
  t.cell("zipf exponent (head fit)").cell("zipf-like").cell(s.zipf.exponent, 2);
  bench::emit(t, env, "Fig 3 — term replication");

  const auto curve = analysis::replication_rank_curve(counts);
  util::Table plot({"rank", "clients_with_term"});
  for (double r = 1.0; r < static_cast<double>(curve.size()); r *= 4.0) {
    const auto idx = static_cast<std::size_t>(r) - 1;
    plot.add_row();
    plot.cell(curve[idx].x, 0).cell(curve[idx].y, 0);
  }
  bench::emit(plot, env, "Fig 3 — rank plot (log-spaced sample)");
  return 0;
}
