// Replication-policy experiment: what WOULD fix the paper's problem?
//
// Given the measured query-rate skew, compare the organic replica
// allocation the crawl actually shows against the three engineered
// policies (uniform / proportional / square-root) at the SAME total copy
// budget, measuring the expected random-probe search size and the
// simulated random-walk cost. Cohen & Shenker's square-root allocation
// is the analytical optimum; the measured allocation is dramatically
// worse because organic replication ignores demand entirely — which is
// the storage-side mirror of the paper's query/annotation mismatch.
#include "bench/bench_common.hpp"

#include <numeric>

#include "src/overlay/topology.hpp"
#include "src/sim/network.hpp"
#include "src/sim/random_walk.hpp"
#include "src/sim/replication.hpp"
#include "src/sim/trial_runner.hpp"
#include "src/util/stats.hpp"
#include "src/util/zipf.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.05);
  const auto nodes = cli.get_uint("nodes", 10'000);
  const auto num_objects = cli.get_uint("objects", 2'000);
  const auto trials = cli.get_uint("trials", 1'500);
  bench::print_header(
      "exp_replication_policy", env,
      "Cohen-Shenker framing: the measured organic allocation vs "
      "engineered allocations at equal storage budget");

  // Query rates over objects: Zipf, as the paper's query head implies.
  const auto rates = util::zipf_pmf(num_objects, 1.0);

  // The organic allocation: replica counts sampled from the crawl.
  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  util::Rng rng(env.seed);
  std::vector<std::uint64_t> organic = sim::sample_replica_counts(
      crawl.object_replica_counts(), num_objects, rng);
  // CRITICAL: organic replication is demand-blind — shuffle so counts are
  // uncorrelated with query rates (as the paper's mismatch result shows).
  for (std::size_t i = organic.size(); i > 1; --i) {
    std::swap(organic[i - 1], organic[rng.bounded(i)]);
  }
  const std::uint64_t budget = std::max<std::uint64_t>(
      num_objects, std::accumulate(organic.begin(), organic.end(),
                                   std::uint64_t{0}));
  std::cout << "# total copy budget (from the organic allocation): "
            << budget << " copies over " << num_objects << " objects\n";

  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);
  sim::RandomWalkParams wp;
  wp.walkers = 8;
  wp.max_steps = 512;

  auto simulate = [&](const std::vector<std::uint64_t>& allocation,
                      std::uint64_t seed) {
    util::Rng prng(seed);
    const sim::Placement placement =
        sim::place_by_counts(allocation, nodes, prng);
    const util::DiscreteSampler query_sampler{std::span<const double>(rates)};
    const sim::TrialRunner runner({env.threads, seed});
    const sim::TrialAggregate agg =
        runner.run(trials, [&](std::size_t, util::Rng& trng) {
          const std::size_t obj = query_sampler(trng);
          const auto src = static_cast<NodeId>(trng.bounded(nodes));
          const auto r = sim::random_walk_locate(
              graph, src, placement.holders[obj], wp, trng);
          sim::TrialOutcome out;
          out.success = r.success;
          out.messages = r.messages;
          return out;
        });
    return std::pair<double, double>{agg.success_rate(), agg.mean_messages()};
  };

  util::Table t({"allocation", "E[probes] (analytical)",
                 "walk success", "walk msgs/query"});
  auto row = [&](const char* name, const std::vector<std::uint64_t>& alloc,
                 std::uint64_t seed) {
    const auto [ok, msgs] = simulate(alloc, seed);
    t.add_row();
    t.cell(name)
        .cell(sim::expected_search_size(rates, alloc, nodes), 0)
        .percent(ok, 1)
        .cell(msgs, 0);
  };
  row("organic (measured, demand-blind)", organic, env.seed + 1);
  row("uniform",
      sim::allocate_replicas(rates, budget, sim::ReplicationPolicy::kUniform,
                             nodes),
      env.seed + 2);
  row("proportional",
      sim::allocate_replicas(rates, budget,
                             sim::ReplicationPolicy::kProportional, nodes),
      env.seed + 3);
  row("square-root (optimal)",
      sim::allocate_replicas(rates, budget,
                             sim::ReplicationPolicy::kSquareRoot, nodes),
      env.seed + 4);
  bench::emit(t, env,
              "Same storage, different allocation: demand-aware replication "
              "is the storage-side fix the paper's position implies");
  return 0;
}
