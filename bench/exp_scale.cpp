// Million-node scale sweep: how far does the query-centric argument
// carry when the world stops fitting in a laptop's cache? Builds an
// n-node world through the streaming CSR path (overlay::CsrGraphBuilder
// + parallel PeerStore::finalize), optionally round-trips it through a
// mmap-able WorldSnapshot, and runs a success-vs-TTL sweep for the
// flood / dht-only / hybrid / adaptive engines on top of it.
//
// Paper context: Sec V/VII argue flooding cannot find rarely-replicated
// content; at 10^6 nodes a TTL-5 flood covers ~2% of the network, so
// the success gap against the structured index is the whole story.
//
// Flags beyond the BenchEnv set (--seed/--threads/--engine/--csv):
//   --nodes N        world size (default 100000; the headline run is 1000000)
//   --trials T       Monte-Carlo queries per engine x TTL cell (default 16)
//   --snapshot PATH  save the built world to PATH, mmap-load it back, and
//                    run the sweep over the mapped views (default: in-memory)
//   --json PATH      write build/sweep metrics through bench_json.hpp:
//                    peak RSS, nodes built per second per core, phase
//                    timings, and the per-engine success/message matrix
#include "bench/bench_common.hpp"

#include <sys/resource.h>

#include <chrono>
#include <optional>
#include <thread>

#include "bench/bench_json.hpp"
#include "src/sim/adaptive.hpp"
#include "src/sim/world_snapshot.hpp"
#include "src/util/rng.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

/// Seconds elapsed since `start` (monotonic).
double since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Peak resident set of this process in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Synthetic Zipf content placement that scales to 10^6 peers (the
/// crawl synthesizer is faithful but too heavy at this size): each peer
/// holds a few catalog objects sampled by popularity rank, and an
/// object's terms are a pure function of its id, so replicas of the
/// same object match the same conjunctive queries on every holder.
sim::PeerStore build_scale_store(std::size_t nodes, std::uint64_t seed,
                                 std::size_t finalize_threads) {
  const std::uint64_t catalog =
      std::max<std::uint64_t>(1'000, nodes / 5);
  const std::uint32_t vocab =
      static_cast<std::uint32_t>(std::max<std::size_t>(500, nodes / 50));
  const util::ZipfSampler zipf(catalog, 1.0);
  util::Rng rng(seed);
  sim::PeerStore store(nodes);
  for (NodeId v = 0; v < nodes; ++v) {
    const std::size_t library = 1 + rng.bounded(2);  // 1-2 objects
    for (std::size_t i = 0; i < library; ++i) {
      const std::uint64_t id = zipf(rng);
      std::vector<sim::TermId> terms;
      const std::size_t nterms = 1 + (util::mix64(id ^ 0x9E37) % 3);
      for (std::size_t k = 0; k < nterms; ++k) {
        terms.push_back(
            static_cast<sim::TermId>(util::mix64(id * 7 + k) % vocab));
      }
      std::sort(terms.begin(), terms.end());
      terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
      store.add_object(v, id, std::move(terms));
    }
  }
  store.finalize(finalize_threads);
  return store;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli);
  const std::size_t nodes = cli.get_uint("nodes", 100'000);
  const std::size_t trials = cli.get_uint("trials", 16);
  const std::string snapshot_path = cli.get("snapshot", "");
  const std::string json_path = cli.get("json", "");
  if (nodes == 0 || trials == 0) {
    std::cerr << "--nodes and --trials must be positive\n";
    return 2;
  }
  const std::size_t cores =
      env.threads != 0
          ? env.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  bench::print_header(
      "exp_scale", env,
      "Sec V/VII at 10^6 nodes: a TTL-bounded flood covers a vanishing "
      "fraction of the network, so rare content needs the structured tier");

  bench::JsonReport report;
  report.set("scale", "nodes", static_cast<double>(nodes));

  // --- World build (streaming CSR + parallel finalize), all timed. ---
  const auto t_graph = std::chrono::steady_clock::now();
  util::Rng grng(env.seed);
  const overlay::Graph graph =
      overlay::random_regular(nodes, 8, grng, {.threads = env.threads});
  const double graph_s = since(t_graph);

  const auto t_store = std::chrono::steady_clock::now();
  const sim::PeerStore store =
      build_scale_store(nodes, env.seed + 1, env.threads);
  const double store_s = since(t_store);

  const auto t_dht = std::chrono::steady_clock::now();
  sim::ChordDht dht(nodes, env.seed + 4);
  const std::uint64_t publish_messages = dht.publish_store(store);
  const double dht_s = since(t_dht);

  const double build_s = graph_s + store_s;
  report.set("scale", "build_graph_s", graph_s);
  report.set("scale", "build_store_s", store_s);
  report.set("scale", "build_dht_s", dht_s);
  report.set("scale", "nodes_built_per_s_per_core",
             static_cast<double>(nodes) / build_s /
                 static_cast<double>(cores));
  report.set("scale", "edges", static_cast<double>(graph.num_edges()));
  report.set("scale", "objects",
             static_cast<double>(store.total_objects()));
  std::cout << "# world: " << nodes << " nodes, " << graph.num_edges()
            << " edges, " << store.total_objects() << " objects\n"
            << "# build: graph " << graph_s << " s, store " << store_s
            << " s ("
            << static_cast<double>(nodes) / build_s /
                   static_cast<double>(cores)
            << " nodes/s/core on " << cores << " core(s)); DHT publish "
            << publish_messages << " msgs in " << dht_s << " s\n";

  // --- Optional snapshot round trip: the sweep below then reads the
  // world through the memory-mapped views, exactly as a second bench
  // process sharing the blob would. ---
  std::optional<sim::WorldSnapshot> snapshot;
  overlay::Graph mapped_graph(0);
  sim::PeerStore mapped_store(0);
  const overlay::Graph* sweep_graph = &graph;
  const sim::PeerStore* sweep_store = &store;
  if (!snapshot_path.empty()) {
    const auto t_save = std::chrono::steady_clock::now();
    sim::save_world_snapshot(snapshot_path, graph, store, env.seed);
    const double save_s = since(t_save);
    const auto t_load = std::chrono::steady_clock::now();
    snapshot = sim::WorldSnapshot::load(snapshot_path);
    mapped_graph = snapshot->graph_view();
    mapped_store = snapshot->store_view();
    const double load_s = since(t_load);
    sweep_graph = &mapped_graph;
    sweep_store = &mapped_store;
    report.set("scale", "snapshot_save_s", save_s);
    report.set("scale", "snapshot_load_s", load_s);
    report.set("scale", "snapshot_bytes",
               static_cast<double>(snapshot->file_size()));
    std::cout << "# snapshot: " << snapshot->file_size() << " bytes, save "
              << save_s << " s, mmap load " << load_s
              << " s; sweep runs on the mapped views\n";
  }

  // --- Engine wiring. The adaptive network is built once (cold start)
  // and shared across every TTL row instead of once per make_engine. ---
  const auto t_adaptive = std::chrono::steady_clock::now();
  const sim::AdaptiveOverlayNetwork adaptive_net(*sweep_graph, *sweep_store);
  const double adaptive_s = since(t_adaptive);
  report.set("scale", "build_adaptive_s", adaptive_s);

  sim::EngineWorld ew;
  ew.graph = sweep_graph;
  ew.store = sweep_store;
  ew.dht = &dht;
  ew.adaptive = &adaptive_net;

  util::Rng qrng(env.seed + 7);
  const auto queries = bench::make_object_queries(*sweep_store, trials, qrng);
  if (queries.empty()) {
    std::cerr << "no queries could be derived from the store\n";
    return 1;
  }
  const sim::TrialRunner runner({env.threads, env.seed + 11});
  const auto make_query = [&](std::uint32_t ttl) {
    return [&, ttl](std::size_t q, util::Rng& trng) {
      sim::Query query;
      query.source = static_cast<NodeId>(trng.bounded(nodes));
      query.terms = queries[q % queries.size()];
      query.ttl = ttl;
      query.trial = q;
      return query;
    };
  };

  util::Table t({"engine", "ttl", "success", "msgs/query"});
  const auto sweep_row = [&](std::string_view name,
                             const sim::SearchEngine& engine,
                             std::uint32_t ttl, const std::string& ttl_label) {
    const sim::TrialAggregate agg =
        bench::run_engine_sweep(runner, trials, engine, make_query(ttl));
    t.add_row();
    t.cell(std::string(name))
        .cell(ttl_label)
        .percent(agg.success_rate(), 1)
        .cell(agg.mean_messages(), 1);
    const std::string key = std::string(name) + "/ttl" + ttl_label;
    report.set("sweep", key + "/success", agg.success_rate());
    report.set("sweep", key + "/messages", agg.mean_messages());
  };

  constexpr std::uint32_t kTtls[] = {2, 3, 4, 5};
  const bool want = env.engine.empty();
  // dht-only routes by key, not TTL: one row.
  if (want || env.engine == "dht-only") {
    const auto engine = sim::make_engine("dht-only", ew);
    sweep_row("dht-only", *engine, kTtls[0], "-");
  }
  for (const char* name : {"flood", "hybrid", "adaptive"}) {
    if (!want && env.engine != name) continue;
    for (const std::uint32_t ttl : kTtls) {
      ew.hybrid.flood_ttl = ttl;
      const auto engine = sim::make_engine(name, ew);
      sweep_row(name, *engine, ttl, std::to_string(ttl));
    }
  }

  report.set("scale", "peak_rss_mib", peak_rss_mib());
  std::cout << "# peak RSS: " << peak_rss_mib() << " MiB\n";
  bench::emit(t, env,
              "Success vs TTL at scale (flood fades, the index holds)");
  if (!json_path.empty() && !report.write_file(json_path)) {
    std::cerr << "exp_scale: cannot write " << json_path << "\n";
    return 1;
  }
  return 0;
}
