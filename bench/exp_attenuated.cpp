// Attenuated-filter routing ablation: do multi-hop synopsis gradients
// beat one-hop synopses at equal advertising spend — and does the
// query-centric selection policy still pay off when the synopses
// propagate several hops?
//
// Grid: depth x policy, niche-term workload on the measured content.
#include "bench/bench_common.hpp"

#include "src/core/attenuated.hpp"
#include "src/overlay/topology.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 0.02);
  const auto nodes = cli.get_uint("nodes", 2'000);
  const auto num_queries = cli.get_uint("queries", 250);
  const auto budget = cli.get_uint("term-budget", 24);
  bench::print_header(
      "exp_attenuated", env,
      "Attenuated (multi-hop) synopsis routing: depth x selection-policy "
      "grid on the mismatch workload");

  const trace::ContentModel model(env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, env.crawl_params());
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);
  util::Rng rng(env.seed);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);

  // Niche-term workload (the tail-most genuine tail-lexicon words).
  util::Rng wrng(env.seed + 1);
  std::vector<std::vector<sim::TermId>> queries;
  while (queries.size() < num_queries) {
    const auto peer = static_cast<NodeId>(wrng.bounded(nodes));
    if (store.objects(peer).empty()) continue;
    const auto& obj =
        store.objects(peer)[wrng.bounded(store.objects(peer).size())];
    if (obj.terms.empty()) continue;
    queries.push_back({obj.terms.back()});
  }
  core::TermPopularityTracker tracker;
  for (const auto& q : queries) tracker.observe_query(q);

  core::AttenuatedSearchParams sp;
  sp.max_hops = 24;
  sp.alternates = 2;

  util::Table t({"depth", "policy", "success", "msgs/query",
                 "ad KiB total"});
  for (const std::size_t depth : {1ULL, 2ULL, 3ULL}) {
    for (const bool query_centric : {false, true}) {
      core::AttenuatedParams ap;
      ap.depth = depth;
      ap.term_budget = budget;
      const core::AttenuatedOverlay overlay(
          graph, store, ap,
          query_centric ? core::SynopsisPolicy::kQueryCentric
                        : core::SynopsisPolicy::kContentCentric,
          query_centric ? &tracker : nullptr);

      util::Rng prng(env.seed + 9);
      std::size_t ok = 0;
      util::RunningStats msgs;
      for (const auto& q : queries) {
        const auto src = static_cast<NodeId>(prng.bounded(nodes));
        const auto r = overlay.search(src, q, sp, prng);
        ok += r.success;
        msgs.add(static_cast<double>(r.messages));
      }
      t.add_row();
      t.cell(static_cast<std::uint64_t>(depth))
          .cell(query_centric ? "query-centric" : "content-centric")
          .percent(static_cast<double>(ok) /
                       static_cast<double>(queries.size()),
                   1)
          .cell(msgs.mean(), 1)
          .cell(static_cast<double>(overlay.advertisement_bytes()) / 1024.0,
                0);
    }
  }
  bench::emit(t, env,
              "Depth deepens the gradient; the query-centric policy decides "
              "whether the right terms are in it");
  return 0;
}
