// Figure 6: Jaccard similarity between the popular query terms of an
// interval (Q*_t) and those that were also popular in the previous
// interval (Q**_t = Q*_t ∩ Q*_{t-1}). Paper: after a short warm-up the
// similarity exceeds 90% — the popular set is stable.
#include "bench/bench_common.hpp"

#include "src/analysis/query_analysis.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 1.0);
  const auto top_k = cli.get_uint("top-k", 50);
  bench::print_header(
      "fig6_popular_term_stability", env,
      "Fig 6: Jaccard(Q*_t, Q**_t) > 0.9 after warm-up (60-min intervals)");

  const trace::ContentModel model(env.model_params());
  const trace::QueryTrace trace =
      generate_query_trace(model, env.query_params());

  analysis::PopularPolicy policy;
  policy.top_k = top_k;
  const analysis::QueryTermAnalyzer analyzer(
      trace.queries(), trace.duration_s(), 3600.0, 0.10);
  const auto series = analyzer.stability_series(policy);

  util::RunningStats warmup, steady;
  const std::size_t cut = series.size() / 4;
  for (std::size_t i = 0; i < series.size(); ++i) {
    (i < cut ? warmup : steady).add(series[i]);
  }

  util::Table t({"metric", "paper", "measured"});
  t.add_row();
  t.cell("steady-state mean Jaccard").cell("> 0.90").cell(steady.mean(), 3);
  t.add_row();
  t.cell("steady-state min Jaccard").cell("high").cell(steady.min(), 3);
  t.add_row();
  t.cell("warm-up mean Jaccard").cell("lower/noisy").cell(warmup.mean(), 3);
  t.add_row();
  t.cell("intervals evaluated").cell("~151 (1 week)").cell(
      static_cast<std::uint64_t>(series.size()));
  bench::emit(t, env, "Fig 6 — popular-set stability");

  util::Table plot({"interval", "jaccard"});
  for (std::size_t i = 0; i < series.size();
       i += std::max<std::size_t>(1, series.size() / 24)) {
    plot.add_row();
    plot.cell(static_cast<std::uint64_t>(i)).cell(series[i], 3);
  }
  bench::emit(plot, env, "Fig 6 — time series (sampled)");
  return 0;
}
