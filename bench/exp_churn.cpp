// Churn ablation: the paper's replication problem under peer dynamics.
//
// Flooding success under the measured Zipf placement degrades roughly
// linearly with peer uptime — most objects have one holder, and when
// that holder sleeps, no TTL helps. Uniform placements with >= 2 copies
// degrade much more gracefully. This extends Fig 8 with the churn axis
// (DESIGN.md section 5).
#include "bench/bench_common.hpp"

#include "src/overlay/churn.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/flood.hpp"
#include "src/sim/trial_runner.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

namespace {

double success_under_uptime(const overlay::TwoTierTopology& topo,
                            const sim::Placement& placement,
                            std::uint32_t ttl, double uptime,
                            std::size_t trials, std::uint64_t seed,
                            std::size_t threads) {
  const sim::TrialRunner runner({threads, seed});
  const sim::TrialAggregate agg = runner.run(
      trials, [&] { return sim::FloodEngine(topo.graph); },
      [&](std::size_t, util::Rng& rng, sim::FloodEngine& engine) {
        // Fresh liveness sample per query (memoryless churn snapshot).
        const auto online =
            overlay::sample_online(topo.graph.num_nodes(), uptime, rng);
        const auto src =
            static_cast<NodeId>(rng.bounded(topo.graph.num_nodes()));
        const auto obj = rng.bounded(placement.num_objects());
        sim::TrialOutcome out;
        out.success = engine.reaches_any(src, ttl, placement.holders[obj],
                                         &topo.is_ultrapeer, nullptr, &online);
        return out;
      });
  return agg.success_rate();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::from_cli(cli, 1.0);
  const auto nodes = cli.get_uint("nodes", 10'000);
  const auto trials = cli.get_uint("trials", 600);
  const auto ttl = static_cast<std::uint32_t>(cli.get_uint("ttl", 4));
  const auto crawl_scale = cli.get_double("crawl-scale", 0.05);
  bench::print_header(
      "exp_churn", env,
      "Churn ablation of Fig 8: Zipf placement collapses with uptime; "
      "multi-copy uniform placements degrade gracefully");

  overlay::TwoTierParams tp;
  tp.num_nodes = nodes;
  util::Rng rng(env.seed);
  const overlay::TwoTierTopology topo = overlay::gnutella_two_tier(tp, rng);

  bench::BenchEnv crawl_env = env;
  crawl_env.scale = crawl_scale;
  const trace::ContentModel model(crawl_env.model_params());
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, crawl_env.crawl_params());
  const auto crawl_counts = crawl.object_replica_counts();

  util::Rng prng(env.seed + 1);
  const sim::Placement zipf = sim::place_by_counts(
      sim::sample_replica_counts(crawl_counts, 2'000, prng), nodes, prng);
  const sim::Placement uni2 = sim::place_uniform(500, 2, nodes, prng);
  const sim::Placement uni10 = sim::place_uniform(500, 10, nodes, prng);

  util::Table t({"uptime", "uniform 2 copies", "uniform 10 copies",
                 "zipf (measured dist)", "zipf retained vs 100% up"});
  double zipf_full = 0.0;
  for (const double uptime : {1.0, 0.75, 0.5, 0.25}) {
    const double u2 = success_under_uptime(topo, uni2, ttl, uptime, trials,
                                           env.seed + 11, env.threads);
    const double u10 = success_under_uptime(topo, uni10, ttl, uptime, trials,
                                            env.seed + 12, env.threads);
    const double z = success_under_uptime(topo, zipf, ttl, uptime, trials,
                                          env.seed + 13, env.threads);
    if (uptime == 1.0) zipf_full = z;
    t.add_row();
    t.percent(uptime, 0);
    t.percent(u2, 1);
    t.percent(u10, 1);
    t.percent(z, 1);
    t.percent(zipf_full > 0 ? z / zipf_full : 0.0, 0);
  }
  bench::emit(t, env, "Flood success vs uptime (TTL " + std::to_string(ttl) +
                          ", " + std::to_string(nodes) + " nodes)");
  return 0;
}
