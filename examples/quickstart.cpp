// Quickstart: the qcp2p pipeline in ~80 lines.
//
//   1. synthesize a content universe and a Gnutella-style crawl;
//   2. build an overlay network whose peers hold that content;
//   3. run the same query through blind flooding, hybrid flood+DHT, and
//      a query-centric synopsis overlay, comparing cost and outcome.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "src/core/query_centric.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/flood.hpp"
#include "src/sim/hybrid.hpp"
#include "src/trace/gnutella.hpp"

using namespace qcp2p;

int main() {
  // 1. A small universe and crawl (deterministic in the seed).
  trace::ContentModelParams universe;
  universe.core_lexicon_size = 4'000;
  universe.catalog_songs = 60'000;
  universe.artists = 10'000;
  universe.tail_lexicon_size = 100'000;
  universe.seed = 7;
  const trace::ContentModel model(universe);

  trace::GnutellaCrawlParams crawl_params;
  crawl_params.num_peers = 1'000;
  crawl_params.mean_objects_per_peer = 120;
  const trace::CrawlSnapshot crawl =
      generate_gnutella_crawl(model, crawl_params);
  std::cout << "crawl: " << crawl.num_peers() << " peers share "
            << crawl.total_objects() << " objects\n";

  // 2. Overlay + content. Every crawled peer becomes a network node.
  util::Rng rng(11);
  const std::size_t nodes = crawl.num_peers();
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  // A query: terms of some real object (so it is answerable).
  std::vector<sim::TermId> query;
  for (overlay::NodeId p = 0; p < nodes && query.empty(); ++p) {
    if (!store.objects(p).empty()) query = store.objects(p)[0].terms;
  }
  std::cout << "query: " << query.size() << " conjunctive terms\n\n";
  const auto source = static_cast<overlay::NodeId>(rng.bounded(nodes));

  // 3a. Blind flooding (classic Gnutella).
  const sim::FloodSearchResult flood =
      sim::flood_search(graph, store, source, query, /*ttl=*/3);
  std::cout << "flood TTL=3      : " << flood.results.size() << " results, "
            << flood.messages << " messages\n";

  // 3b. Hybrid flood-then-DHT (Loo et al.).
  sim::ChordDht dht(nodes);
  dht.publish_store(store);
  const sim::HybridResult hybrid = sim::hybrid_search(
      graph, store, dht, source, query, sim::HybridParams{});
  std::cout << "hybrid flood+DHT : " << hybrid.results.size() << " results, "
            << hybrid.total_messages() << " messages (used DHT: "
            << (hybrid.used_dht ? "yes" : "no") << ")\n";

  // 3c. Query-centric synopsis overlay (this paper's position): peers
  // advertise budgeted synopses ranked by observed query popularity.
  core::TermPopularityTracker tracker;
  for (int i = 0; i < 200; ++i) tracker.observe_query(query);
  core::SynopsisParams sp;
  sp.term_budget = 32;
  core::QueryCentricOverlay overlay(graph, store, sp,
                                    core::SynopsisPolicy::kQueryCentric);
  overlay.rebuild_synopses(&tracker);
  core::GuidedSearchParams gp;
  gp.ttl = 6;
  const core::GuidedSearchResult guided =
      overlay.search(source, query, gp, rng);
  std::cout << "query-centric    : " << guided.results.size() << " results, "
            << guided.messages << " messages\n";
  return 0;
}
