// Replication planner: given a query-rate skew and a storage budget,
// print the allocation each policy would choose and its expected
// random-probe search size — the Cohen-Shenker exercise as a CLI, useful
// when sizing caches/replicas for any unstructured system.
//
// Usage: ./build/examples/replication_planner
//            [--objects 12] [--peers 10000] [--budget 120] [--zipf 1.0]
#include <iomanip>
#include <iostream>

#include "src/sim/replication.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/zipf.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto objects = static_cast<std::size_t>(cli.get_uint("objects", 12));
  const auto peers = cli.get_uint("peers", 10'000);
  const auto budget = cli.get_uint("budget", 10 * objects);
  const double zipf = cli.get_double("zipf", 1.0);

  const auto rates = util::zipf_pmf(objects, zipf);
  std::cout << objects << " objects, Zipf(" << zipf << ") query rates, "
            << budget << " total copies across " << peers << " peers\n\n";

  struct Policy {
    const char* name;
    sim::ReplicationPolicy policy;
  };
  const Policy policies[] = {
      {"uniform", sim::ReplicationPolicy::kUniform},
      {"proportional", sim::ReplicationPolicy::kProportional},
      {"square-root", sim::ReplicationPolicy::kSquareRoot},
  };

  std::cout << std::left << std::setw(8) << "object" << std::setw(12)
            << "query rate";
  for (const Policy& p : policies) std::cout << std::setw(14) << p.name;
  std::cout << "\n";

  std::vector<std::vector<std::uint64_t>> allocations;
  for (const Policy& p : policies) {
    allocations.push_back(
        sim::allocate_replicas(rates, budget, p.policy, peers));
  }
  for (std::size_t i = 0; i < objects; ++i) {
    std::cout << std::left << std::setw(8) << i << std::setw(12)
              << util::Table::format(rates[i], 4);
    for (const auto& alloc : allocations) {
      std::cout << std::setw(14) << alloc[i];
    }
    std::cout << "\n";
  }

  std::cout << "\nexpected probes per query (lower is better):\n";
  for (std::size_t p = 0; p < allocations.size(); ++p) {
    std::cout << "  " << std::left << std::setw(14) << policies[p].name
              << util::Table::format(
                     sim::expected_search_size(rates, allocations[p], peers),
                     1)
              << "\n";
  }
  std::cout << "  " << std::left << std::setw(14) << "optimum"
            << util::Table::format(
                   sim::optimal_search_size(rates, budget, peers), 1)
            << "  (unrounded square-root allocation)\n";
  return 0;
}
