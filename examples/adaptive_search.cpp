// Flash-crowd demo of the query-centric overlay (Section VII): a term
// nobody queried yesterday suddenly dominates the workload; the adaptive
// synopsis overlay notices through its popularity tracker, re-advertises,
// and search success recovers within one adaptation epoch — while a
// static content-centric overlay keeps missing.
//
// Usage: ./build/examples/adaptive_search [--nodes 1200] [--epochs 6]
#include <iomanip>
#include <iostream>

#include "src/core/query_centric.hpp"
#include "src/overlay/topology.hpp"
#include "src/trace/gnutella.hpp"
#include "src/util/cli.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_uint("nodes", 1'200));
  const auto epochs = cli.get_uint("epochs", 6);
  const auto queries_per_epoch = cli.get_uint("queries", 150);

  trace::ContentModelParams mp;
  mp.core_lexicon_size = 2'500;
  mp.catalog_songs = 30'000;
  mp.artists = 6'000;
  mp.tail_lexicon_size = 60'000;
  const trace::ContentModel model(mp);
  const trace::CrawlSnapshot crawl = generate_gnutella_crawl(
      model, trace::GnutellaCrawlParams{}.scaled(
                 static_cast<double>(nodes) / 37'572.0));
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  util::Rng rng(9);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);

  core::SynopsisParams sp;
  sp.term_budget = 24;  // tight: selection policy matters
  core::TermPopularityTracker tracker;
  core::QueryCentricOverlay adaptive(graph, store, sp,
                                     core::SynopsisPolicy::kQueryCentric);
  core::QueryCentricOverlay static_overlay(
      graph, store, sp, core::SynopsisPolicy::kContentCentric);

  // The "hot" term: a rare annotation that will flash-crowd at epoch 3.
  sim::TermId hot = 0;
  for (overlay::NodeId p = 0; p < nodes && hot == 0; ++p) {
    for (const auto& o : store.objects(p)) {
      if (!o.terms.empty()) hot = o.terms.back();
    }
  }
  // Background workload: whatever peers actually query day to day.
  auto background_query = [&](util::Rng& r) -> std::vector<sim::TermId> {
    for (;;) {
      const auto peer = static_cast<NodeId>(r.bounded(nodes));
      if (store.objects(peer).empty()) continue;
      const auto& obj = store.objects(peer)[r.bounded(store.objects(peer).size())];
      if (!obj.terms.empty()) return {obj.terms.front()};
    }
  };

  core::GuidedSearchParams gp;
  gp.ttl = 8;
  gp.fallback_fanout = 2;
  gp.message_budget = 300;

  std::cout << "epoch  workload        adaptive  static   (success over "
            << queries_per_epoch << " queries)\n";
  util::Rng wrng(21);
  for (std::uint64_t epoch = 0; epoch < epochs; ++epoch) {
    const bool crowd = epoch >= 3;
    std::size_t ok_adaptive = 0, ok_static = 0;
    for (std::uint64_t q = 0; q < queries_per_epoch; ++q) {
      std::vector<sim::TermId> query =
          crowd && wrng.chance(0.8) ? std::vector<sim::TermId>{hot}
                                    : background_query(wrng);
      tracker.observe_query(query);
      const auto src = static_cast<NodeId>(wrng.bounded(nodes));
      ok_adaptive += adaptive.search(src, query, gp, wrng).success;
      ok_static += static_overlay.search(src, query, gp, wrng).success;
    }
    // End-of-epoch adaptation: the query-centric overlay re-advertises;
    // transiently popular terms propagate immediately.
    adaptive.rebuild_synopses(&tracker);
    adaptive.adapt_to_transients(tracker);

    std::cout << std::setw(5) << epoch << "  "
              << (crowd ? "FLASH CROWD   " : "background    ") << "  "
              << std::setw(6) << std::fixed << std::setprecision(1)
              << 100.0 * static_cast<double>(ok_adaptive) / static_cast<double>(queries_per_epoch)
              << "%   " << std::setw(6)
              << 100.0 * static_cast<double>(ok_static) / static_cast<double>(queries_per_epoch)
              << "%" << (crowd && tracker.is_transient(hot)
                             ? "   <- tracker flags the hot term as transient"
                             : "")
              << "\n";
  }
  std::cout << "\nThe adaptive overlay converges on the flash crowd within "
               "one epoch;\nthe content-centric overlay never re-advertises "
               "and stays blind to it.\n";
  return 0;
}
