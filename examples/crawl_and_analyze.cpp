// The paper's Section II methodology, end to end: stand up a live
// Gnutella network (protocol-level servents over an overlay), discover
// its peers with PING/PONG sweeps, crawl the discovered peers' file
// lists with realistic failure modes, and run the Fig 1-3 analysis on
// the *observed* sample — then compare against ground truth, which the
// real researchers never had.
//
// Usage: ./build/examples/crawl_and_analyze [--peers 1000]
#include <iostream>

#include "src/analysis/replication.hpp"
#include "src/crawler/crawler.hpp"
#include "src/gnutella/network.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/network.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto peers = static_cast<std::size_t>(cli.get_uint("peers", 1'000));

  // Ground truth: the network as it really is.
  trace::ContentModelParams mp;
  mp.core_lexicon_size = 3'000;
  mp.catalog_songs = 60'000;
  mp.artists = 10'000;
  mp.tail_lexicon_size = 120'000;
  const trace::ContentModel model(mp);
  trace::GnutellaCrawlParams cp;
  cp.num_peers = static_cast<std::uint32_t>(peers);
  cp.mean_objects_per_peer = 80;
  const trace::CrawlSnapshot truth = generate_gnutella_crawl(model, cp);

  util::Rng rng(13);
  const overlay::Graph graph = overlay::random_regular(peers, 6, rng);
  const sim::PeerStore store = sim::peer_store_from_crawl(truth, peers);

  // 1. A protocol-level ping sweep from one vantage point: how much of
  // the network does a single monitoring servent even see?
  gnutella::GnutellaNetwork net(graph, store);
  const gnutella::PingOutcome sweep = net.ping(0, 5);
  std::cout << "ping sweep (TTL 5): heard " << sweep.pongs.size() << " of "
            << peers << " peers, " << sweep.messages << " messages\n";

  // 2. Cruiser-style iterative topology + file crawl with failures.
  const crawler::Crawler crawler;  // default: ~35% combined loss
  const crawler::TopologyCrawl topo = crawler.crawl_topology(graph, {0, 1, 2});
  const crawler::FileCrawl observed =
      crawler.crawl_files(truth, topo.discovered);
  std::cout << "topology crawl: discovered " << topo.discovered.size()
            << " peers (" << topo.responsive.size() << " responsive)\n"
            << "file crawl: " << observed.succeeded << " listings, "
            << observed.unreachable << " unreachable, " << observed.refused
            << " protected, " << observed.busy_failed << " busy\n\n";

  // 3. The paper's analysis on the observed sample vs the ground truth.
  auto report = [](const char* label, const trace::CrawlSnapshot& snap) {
    const auto counts = snap.object_replica_counts();
    const auto s = analysis::summarize_replication(counts, snap.num_peers());
    std::cout << label << ": " << snap.num_peers() << " peers, "
              << s.unique_items << " unique objects, singleton "
              << util::Table::format(s.singleton_fraction * 100, 1)
              << "%, on <= 37 peers "
              << util::Table::format(
                     util::fraction_at_or_below(counts, 37) * 100, 1)
              << "%\n";
  };
  report("observed    ", observed.observed);
  report("ground truth", truth);
  std::cout << "\nThe lossy crawl reproduces the long-tail conclusion the\n"
               "paper drew from its own (equally lossy) crawls.\n";
  return 0;
}
