// Section V scenario, narrated: why the unstructured phase of hybrid P2P
// search fails under the measured content distribution, and what that
// costs relative to going straight to the DHT.
//
// Usage: ./build/examples/hybrid_vs_dht [--nodes 1500] [--queries 200]
#include <iostream>

#include "src/overlay/topology.hpp"
#include "src/sim/hybrid.hpp"
#include "src/trace/gnutella.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;
using overlay::NodeId;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_uint("nodes", 1'500));
  const auto num_queries = cli.get_uint("queries", 200);

  trace::ContentModelParams mp;
  mp.core_lexicon_size = 3'000;
  mp.catalog_songs = 40'000;
  mp.artists = 8'000;
  mp.tail_lexicon_size = 80'000;
  const trace::ContentModel model(mp);
  const trace::CrawlSnapshot crawl = generate_gnutella_crawl(
      model, trace::GnutellaCrawlParams{}.scaled(
                 static_cast<double>(nodes) / 37'572.0));
  const sim::PeerStore store = sim::peer_store_from_crawl(crawl, nodes);

  util::Rng rng(3);
  const overlay::Graph graph = overlay::random_regular(nodes, 8, rng);
  sim::ChordDht dht(nodes);
  const auto publish_cost = dht.publish_store(store);
  std::cout << "setup: " << nodes << " nodes, " << store.total_objects()
            << " objects; DHT publish cost " << publish_cost
            << " messages (one-time)\n\n";

  sim::HybridParams hp;  // Loo et al.: rare = < 20 results
  // TTL 2 keeps the flood's coverage fraction comparable to a real
  // 40,000-node network's TTL-3 reach (a 1,500-node toy network would
  // otherwise cover half the peers in three hops).
  hp.flood_ttl = 2;
  util::RunningStats hybrid_msgs, dht_msgs;
  std::size_t fell_back = 0, hybrid_ok = 0, dht_ok = 0, asked = 0;
  util::Rng qrng(17);
  while (asked < num_queries) {
    const auto peer = static_cast<NodeId>(qrng.bounded(nodes));
    if (store.objects(peer).empty()) continue;
    const auto& obj = store.objects(peer)[qrng.bounded(store.objects(peer).size())];
    if (obj.terms.size() < 2) continue;
    // Two-term conjunctive query for a real object.
    std::vector<sim::TermId> q{obj.terms[0], obj.terms[obj.terms.size() / 2]};
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());

    const auto src = static_cast<NodeId>(qrng.bounded(nodes));
    const auto hybrid = sim::hybrid_search(graph, store, dht, src, q, hp);
    const auto pure = sim::dht_only_search(dht, src, q);
    hybrid_msgs.add(static_cast<double>(hybrid.total_messages()));
    dht_msgs.add(static_cast<double>(pure.total_messages()));
    fell_back += hybrid.used_dht;
    hybrid_ok += hybrid.success();
    dht_ok += pure.success();
    ++asked;
  }

  const double n = static_cast<double>(asked);
  std::cout << "hybrid (flood TTL=" << hp.flood_ttl << ", rare < "
            << hp.rare_cutoff << " results):\n"
            << "  success        : " << 100.0 * static_cast<double>(hybrid_ok) / n << "%\n"
            << "  fell back to DHT: " << 100.0 * static_cast<double>(fell_back) / n
            << "% of queries (the paper's point: almost all floods are\n"
            << "    'rare' under Zipf replication, so the flood is waste)\n"
            << "  messages/query : " << hybrid_msgs.mean() << "\n\n"
            << "pure DHT:\n"
            << "  success        : " << 100.0 * static_cast<double>(dht_ok) / n << "%\n"
            << "  messages/query : " << dht_msgs.mean() << "\n\n"
            << "=> the hybrid pays " << hybrid_msgs.mean() / dht_msgs.mean()
            << "x the per-query message cost for the same answers.\n";
  return 0;
}
