// Trace-analysis walkthrough: the measurement half of the paper as a
// library client would use it.
//
//   * generate a Gnutella crawl and a one-week query trace;
//   * persist and reload them through trace_io (the formats external
//     traces can be converted into);
//   * compute the replication summary (Fig 1-3), the transient-term
//     series (Fig 5) and the stability/disconnect contrast (Fig 6/7).
//
// Usage: ./build/examples/trace_analysis [--scale 0.05] [--dir /tmp]
#include <filesystem>
#include <iostream>

#include "src/analysis/query_analysis.hpp"
#include "src/analysis/replication.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"

using namespace qcp2p;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.05);
  const std::string dir = cli.get("dir", std::filesystem::temp_directory_path());

  trace::ContentModelParams mp;
  mp.core_lexicon_size = static_cast<std::uint32_t>(60'000 * scale) + 1'000;
  mp.catalog_songs = static_cast<std::uint32_t>(2'500'000 * scale) + 5'000;
  mp.artists = static_cast<std::uint32_t>(400'000 * scale) + 2'000;
  mp.tail_lexicon_size = static_cast<std::uint32_t>(4'000'000 * scale) + 20'000;
  const trace::ContentModel model(mp);

  // --- crawl -------------------------------------------------------------
  const trace::CrawlSnapshot crawl = generate_gnutella_crawl(
      model, trace::GnutellaCrawlParams{}.scaled(scale));
  const auto counts = crawl.object_replica_counts();
  const auto summary =
      analysis::summarize_replication(counts, crawl.num_peers());
  std::cout << "crawl: " << crawl.num_peers() << " peers, "
            << crawl.total_objects() << " objects, " << summary.unique_items
            << " unique\n"
            << "  singleton objects        : "
            << summary.singleton_fraction * 100 << "%\n"
            << "  on <= 37 peers           : "
            << util::fraction_at_or_below(counts, 37) * 100 << "%\n"
            << "  zipf exponent (head fit) : " << summary.zipf.exponent
            << " (r^2 " << summary.zipf.r_squared << ")\n";

  // --- round-trip through the on-disk format ------------------------------
  const std::string crawl_path = dir + "/qcp2p_crawl.txt";
  save_crawl(crawl_path, crawl);
  const trace::CrawlSnapshot reloaded = load_crawl(crawl_path, model);
  std::cout << "round-trip through " << crawl_path << ": "
            << reloaded.total_objects() << " objects ("
            << (reloaded.total_objects() == crawl.total_objects() ? "match"
                                                                  : "MISMATCH")
            << ")\n\n";

  // --- query trace ---------------------------------------------------------
  trace::QueryTraceParams qp = trace::QueryTraceParams{}.scaled(scale);
  const trace::QueryTrace queries = generate_query_trace(model, qp);
  std::cout << "query trace: " << queries.queries().size() << " queries over "
            << qp.duration_hours << "h, " << queries.events().size()
            << " flash-crowd events\n";

  const analysis::QueryTermAnalyzer analyzer(
      queries.queries(), queries.duration_s(), 3'600.0, 0.10);

  const auto transients =
      analyzer.transient_count_series(analysis::TransientPolicy{});
  util::RunningStats tstats;
  for (auto c : transients) tstats.add(c);
  std::cout << "  transient terms/interval : mean " << tstats.mean()
            << ", max " << tstats.max() << "\n";

  analysis::PopularPolicy policy;
  policy.top_k = 50;
  util::RunningStats stability;
  for (double j : analyzer.stability_series(policy)) stability.add(j);
  util::RunningStats disconnect;
  const auto file_terms = crawl.popular_file_terms(50);
  for (double j : analyzer.disconnect_series(file_terms, policy)) {
    disconnect.add(j);
  }
  std::cout << "  popular-set stability    : " << stability.mean()
            << " (paper: > 0.9 at full query density; reduced --scale\n"
            << "                             thins per-interval counts and "
               "lowers this)\n"
            << "  query/file overlap       : " << disconnect.mean()
            << " (paper: < 0.2)\n"
            << "=> stable queries, mismatched annotations — the paper's "
               "case for query-centric overlays.\n";
  return 0;
}
